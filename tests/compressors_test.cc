// Round-trip, ratio-sanity, and feature tests for the eight CPU-based
// compressors of paper §3.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "compressors/bitshuffle.h"
#include "compressors/buff.h"
#include "compressors/chimp.h"
#include "compressors/fpzip.h"
#include "compressors/gorilla.h"
#include "compressors/ndzip.h"
#include "compressors/pfpc.h"
#include "compressors/spdp.h"
#include "compressors/transpose.h"
#include "util/rng.h"

namespace fcbench::compressors {
namespace {

// ---------------------------------------------------------------------------
// Test data generators

/// Smooth 3-D field (sum of low-frequency sinusoids + mild noise), the
/// structure scientific-simulation compressors exploit.
template <typename F>
std::vector<F> SmoothField3D(size_t d0, size_t d1, size_t d2, uint64_t seed) {
  std::vector<F> v(d0 * d1 * d2);
  Rng rng(seed);
  double ph0 = rng.Uniform(0, 6.28), ph1 = rng.Uniform(0, 6.28);
  for (size_t i = 0; i < d0; ++i) {
    for (size_t j = 0; j < d1; ++j) {
      for (size_t k = 0; k < d2; ++k) {
        double x = std::sin(0.05 * i + ph0) * std::cos(0.07 * j + ph1) +
                   0.5 * std::sin(0.02 * k) + 1e-4 * rng.Normal();
        v[(i * d1 + j) * d2 + k] = static_cast<F>(x * 100.0);
      }
    }
  }
  return v;
}

/// Random-walk time series.
template <typename F>
std::vector<F> RandomWalk(size_t n, uint64_t seed) {
  std::vector<F> v(n);
  Rng rng(seed);
  double x = 500.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Normal() * 0.25;
    v[i] = static_cast<F>(x);
  }
  return v;
}

/// Fully random bit patterns (incompressible; stress case).
template <typename F>
std::vector<F> RandomBits(size_t n, uint64_t seed) {
  std::vector<F> v(n);
  Rng rng(seed);
  for (auto& f : v) {
    // Random finite value from random mantissa/limited exponent.
    f = static_cast<F>(rng.Uniform(-1e6, 1e6));
  }
  return v;
}

/// Decimal-quantized values (p digits), the regime where BUFF is lossless.
std::vector<double> DecimalSeries(size_t n, int digits, uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed);
  double scale = std::pow(10.0, digits);
  double x = 20.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Normal();
    v[i] = std::round(x * scale) / scale;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Parameterized round-trip suite across (method factory, pattern, dtype)

struct MethodCase {
  const char* name;
  std::function<std::unique_ptr<Compressor>()> make;
  bool exact = true;  // bit-exact round trip expected
};

std::vector<MethodCase> AllMethods() {
  CompressorConfig cfg;
  cfg.threads = 4;
  return {
      {"gorilla", [cfg] { return GorillaCompressor::Make(cfg); }},
      {"chimp128", [cfg] { return ChimpCompressor::Make(cfg); }},
      {"pfpc", [cfg] { return PfpcCompressor::Make(cfg); }},
      {"spdp", [cfg] { return SpdpCompressor::Make(cfg); }},
      {"bitshuffle_lz4", [cfg] { return BitshuffleCompressor::MakeLz4(cfg); }},
      {"bitshuffle_zstd",
       [cfg] { return BitshuffleCompressor::MakeZstd(cfg); }},
      {"ndzip_cpu", [cfg] { return NdzipCompressor::Make(cfg); }},
      {"fpzip", [cfg] { return FpzipCompressor::Make(cfg); }},
  };
}

enum class DataKind { kSmooth3D, kWalk1D, kRandom2D, kConstant, kTinyOdd };

std::string KindName(DataKind k) {
  switch (k) {
    case DataKind::kSmooth3D: return "Smooth3D";
    case DataKind::kWalk1D: return "Walk1D";
    case DataKind::kRandom2D: return "Random2D";
    case DataKind::kConstant: return "Constant";
    case DataKind::kTinyOdd: return "TinyOdd";
  }
  return "?";
}

template <typename F>
std::pair<std::vector<F>, DataDesc> MakeData(DataKind kind) {
  DType dt = sizeof(F) == 4 ? DType::kFloat32 : DType::kFloat64;
  switch (kind) {
    case DataKind::kSmooth3D: {
      auto v = SmoothField3D<F>(20, 33, 37, 1);
      return {v, DataDesc::Make(dt, {20, 33, 37})};
    }
    case DataKind::kWalk1D: {
      auto v = RandomWalk<F>(40000, 2);
      return {v, DataDesc::Make(dt, {40000})};
    }
    case DataKind::kRandom2D: {
      auto v = RandomBits<F>(150 * 77, 3);
      return {v, DataDesc::Make(dt, {150, 77})};
    }
    case DataKind::kConstant: {
      std::vector<F> v(10000, static_cast<F>(42.5));
      return {v, DataDesc::Make(dt, {10000})};
    }
    case DataKind::kTinyOdd: {
      auto v = RandomWalk<F>(13, 4);
      return {v, DataDesc::Make(dt, {13})};
    }
  }
  return {{}, {}};
}

class CompressorRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, DataKind, bool>> {};

TEST_P(CompressorRoundTrip, BitExact) {
  auto [mi, kind, f64] = GetParam();
  MethodCase m = AllMethods()[mi];
  auto comp = m.make();

  Buffer compressed, decompressed;
  if (f64) {
    auto [v, desc] = MakeData<double>(kind);
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &compressed).ok());
    ASSERT_TRUE(comp->Decompress(compressed.span(), desc, &decompressed).ok());
    ASSERT_EQ(decompressed.size(), v.size() * 8);
    EXPECT_EQ(std::memcmp(decompressed.data(), v.data(), v.size() * 8), 0)
        << m.name << " " << KindName(kind) << " f64";
  } else {
    auto [v, desc] = MakeData<float>(kind);
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &compressed).ok());
    ASSERT_TRUE(comp->Decompress(compressed.span(), desc, &decompressed).ok());
    ASSERT_EQ(decompressed.size(), v.size() * 4);
    EXPECT_EQ(std::memcmp(decompressed.data(), v.data(), v.size() * 4), 0)
        << m.name << " " << KindName(kind) << " f32";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CompressorRoundTrip,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(DataKind::kSmooth3D,
                                         DataKind::kWalk1D,
                                         DataKind::kRandom2D,
                                         DataKind::kConstant,
                                         DataKind::kTinyOdd),
                       ::testing::Bool()),
    [](const auto& param_info) {
      return std::string(AllMethods()[std::get<0>(param_info.param)].name) + "_" +
             KindName(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) ? "_f64" : "_f32");
    });

// ---------------------------------------------------------------------------
// Ratio sanity: structured data must compress; CR relationships from the
// paper must hold in direction.

template <typename C>
double Ratio(C& comp, ByteSpan in, const DataDesc& desc) {
  Buffer out;
  EXPECT_TRUE(comp.Compress(in, desc, &out).ok());
  return static_cast<double>(in.size()) / static_cast<double>(out.size());
}

TEST(RatioTest, SmoothFieldCompresses) {
  auto v = SmoothField3D<float>(32, 32, 32, 7);
  auto desc = DataDesc::Make(DType::kFloat32, {32, 32, 32});
  for (auto& m : AllMethods()) {
    auto comp = m.make();
    double cr = Ratio(*comp, AsBytes(v), desc);
    // Lorenzo methods must exploit the 3-D structure; XOR/delta methods may
    // stay near 1.0 on noisy mantissas (the paper records sub-1.0 entries
    // for Gorilla/BUFF on several datasets) but must not blow up.
    if (comp->traits().predictor == PredictorClass::kLorenzo) {
      EXPECT_GT(cr, 1.3) << m.name;
    } else {
      EXPECT_GT(cr, 0.85) << m.name;
    }
  }
}

TEST(RatioTest, FpzipBestOnSmoothHpcData) {
  // §6.1.1: fpzip has the highest CR on (structured) HPC datasets.
  auto v = SmoothField3D<float>(32, 32, 32, 9);
  auto desc = DataDesc::Make(DType::kFloat32, {32, 32, 32});
  auto fpzip = FpzipCompressor::Make({});
  double cr_fpzip = Ratio(*fpzip, AsBytes(v), desc);
  auto gorilla = GorillaCompressor::Make({});
  double cr_gorilla = Ratio(*gorilla, AsBytes(v), desc);
  EXPECT_GT(cr_fpzip, cr_gorilla);
}

TEST(RatioTest, ChimpBeatsGorillaOnNoisyValues) {
  // §6.1.1 analysis: the sliding window lets Chimp beat Gorilla when
  // values are more random.
  auto v = RandomWalk<double>(60000, 11);
  auto dd = DataDesc::Make(DType::kFloat64, {60000});
  auto chimp = ChimpCompressor::Make({});
  auto gorilla = GorillaCompressor::Make({});
  EXPECT_GT(Ratio(*chimp, AsBytes(v), dd), Ratio(*gorilla, AsBytes(v), dd));
}

TEST(RatioTest, ZstdBackendBeatsLz4Backend) {
  auto v = RandomWalk<double>(60000, 13);
  auto dd = DataDesc::Make(DType::kFloat64, {60000});
  auto lz4 = BitshuffleCompressor::MakeLz4({});
  auto zstd = BitshuffleCompressor::MakeZstd({});
  EXPECT_GE(Ratio(*zstd, AsBytes(v), dd), Ratio(*lz4, AsBytes(v), dd) * 0.98);
}

// ---------------------------------------------------------------------------
// Transpose kernels

TEST(TransposeTest, Transpose8x8IsInvolution) {
  Rng rng(17);
  for (int t = 0; t < 100; ++t) {
    uint64_t x = rng.Next();
    EXPECT_EQ(Transpose8x8(Transpose8x8(x)), x);
  }
}

TEST(TransposeTest, BitTransposeRoundTrip) {
  Rng rng(19);
  for (size_t esize : {size_t(4), size_t(8)}) {
    for (size_t count : {size_t(8), size_t(32), size_t(64), size_t(4096)}) {
      std::vector<uint8_t> src(count * esize), fwd(count * esize),
          back(count * esize);
      for (auto& b : src) b = static_cast<uint8_t>(rng.Next());
      BitTranspose(src.data(), fwd.data(), count, esize);
      BitUntranspose(fwd.data(), back.data(), count, esize);
      EXPECT_EQ(src, back) << "esize=" << esize << " count=" << count;
    }
  }
}

TEST(TransposeTest, BitTransposeGroupsConstantBits) {
  // All elements identical -> every bit plane is constant 0x00 or 0xff.
  std::vector<uint32_t> elems(64, 0xdeadbeefu);
  std::vector<uint8_t> out(64 * 4);
  BitTranspose(reinterpret_cast<const uint8_t*>(elems.data()), out.data(),
               64, 4);
  for (size_t plane = 0; plane < 32; ++plane) {
    for (size_t b = 0; b < 8; ++b) {
      uint8_t byte = out[plane * 8 + b];
      EXPECT_TRUE(byte == 0x00 || byte == 0xff);
    }
  }
}

TEST(TransposeTest, ByteShuffleRoundTrip) {
  Rng rng(23);
  std::vector<uint8_t> src(999 * 8), fwd(999 * 8), back(999 * 8);
  for (auto& b : src) b = static_cast<uint8_t>(rng.Next());
  ByteShuffle(src.data(), fwd.data(), 999, 8);
  ByteUnshuffle(fwd.data(), back.data(), 999, 8);
  EXPECT_EQ(src, back);
}

// ---------------------------------------------------------------------------
// ndzip Lorenzo transform algebra

TEST(NdzipLorenzoTest, ForwardInverseIdentity3D) {
  size_t sides[3] = {16, 16, 16};
  Rng rng(29);
  std::vector<uint32_t> x(4096), orig;
  for (auto& w : x) w = static_cast<uint32_t>(rng.Next());
  orig = x;
  ndzip_detail::LorenzoForward(x.data(), sides);
  EXPECT_NE(x, orig);
  ndzip_detail::LorenzoInverse(x.data(), sides);
  EXPECT_EQ(x, orig);
}

TEST(NdzipLorenzoTest, ConstantFieldHasSingleNonzeroResidual) {
  size_t sides[3] = {16, 16, 16};
  std::vector<uint64_t> x(4096, 777);
  ndzip_detail::LorenzoForward(x.data(), sides);
  EXPECT_EQ(x[0], 777u);
  for (size_t i = 1; i < x.size(); ++i) EXPECT_EQ(x[i], 0u);
}

TEST(NdzipLorenzoTest, LinearRampResidualsVanishAfterSecondElement) {
  // 1-D ramp: forward difference leaves a constant, so only the first two
  // entries are nonzero after one delta pass.
  size_t sides[3] = {1, 1, 4096};
  std::vector<uint64_t> x(4096);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 1000 + 3 * i;
  ndzip_detail::LorenzoForward(x.data(), sides);
  EXPECT_EQ(x[0], 1000u);
  for (size_t i = 1; i < x.size(); ++i) EXPECT_EQ(x[i], 3u);
}

// ---------------------------------------------------------------------------
// BUFF specifics

TEST(BuffTest, LosslessOnDecimalQuantizedData) {
  for (int digits : {1, 2, 3, 4, 6}) {
    auto v = DecimalSeries(20000, digits, 31 + digits);
    auto desc = DataDesc::Make(DType::kFloat64, {20000}, digits);
    auto comp = BuffCompressor::Make({});
    Buffer c, d;
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok());
    ASSERT_EQ(d.size(), v.size() * 8);
    EXPECT_EQ(std::memcmp(d.data(), v.data(), d.size()), 0)
        << "digits=" << digits;
  }
}

TEST(BuffTest, LossyWithoutPrecisionInfo) {
  // Full-precision doubles cannot fit the bounded encoding: values come
  // back close but not bit-exact (§3.3 feature 1).
  auto v = RandomWalk<double>(5000, 37);
  auto desc = DataDesc::Make(DType::kFloat64, {5000}, 0);  // unspecified
  auto comp = BuffCompressor::Make({});
  Buffer c, d;
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
  ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok());
  const double* back = reinterpret_cast<const double*>(d.data());
  double max_err = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    max_err = std::max(max_err, std::fabs(back[i] - v[i]));
  }
  EXPECT_LT(max_err, 1e-9);  // bounded error
}

TEST(BuffTest, CompressionRatioTracksPrecision) {
  auto v2 = DecimalSeries(20000, 2, 41);
  auto comp = BuffCompressor::Make({});
  Buffer c2, c8;
  ASSERT_TRUE(comp->Compress(AsBytes(v2),
                             DataDesc::Make(DType::kFloat64, {20000}, 2), &c2)
                  .ok());
  ASSERT_TRUE(comp->Compress(AsBytes(v2),
                             DataDesc::Make(DType::kFloat64, {20000}, 8), &c8)
                  .ok());
  EXPECT_LT(c2.size(), c8.size());
  // 2 digits: 8 frac bits + ~9 int bits -> 3 bytes/record vs 8 input.
  EXPECT_GT(static_cast<double>(v2.size() * 8) / c2.size(), 2.5);
}

TEST(BuffTest, SubColumnScanMatchesDecodedScan) {
  auto v = DecimalSeries(10000, 2, 43);
  auto desc = DataDesc::Make(DType::kFloat64, {10000}, 2);
  auto comp = BuffCompressor::Make({});
  Buffer c;
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());

  for (double threshold : {v[100], v[5000], 20.0, -1e9, 1e9}) {
    auto r = BuffCompressor::SubColumnScan(
        c.span(), BuffCompressor::Predicate::kLess, threshold);
    ASSERT_TRUE(r.ok());
    const auto& hits = r.value();
    ASSERT_EQ(hits.size(), v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      EXPECT_EQ(hits[i], v[i] < threshold) << "i=" << i << " thr=" << threshold;
    }
  }
}

TEST(BuffTest, SubColumnEqualScan) {
  auto v = DecimalSeries(5000, 1, 47);
  auto desc = DataDesc::Make(DType::kFloat64, {5000}, 1);
  auto comp = BuffCompressor::Make({});
  Buffer c;
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
  double needle = v[1234];
  auto r = BuffCompressor::SubColumnScan(
      c.span(), BuffCompressor::Predicate::kEqual, needle);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(r.value()[i], v[i] == needle);
  }
}

// ---------------------------------------------------------------------------
// pFPC specifics

TEST(PfpcTest, ThreadCountDoesNotAffectDecodeCorrectness) {
  auto v = RandomWalk<double>(50000, 53);
  auto desc = DataDesc::Make(DType::kFloat64, {50000});
  for (int threads : {1, 2, 8, 16}) {
    CompressorConfig cfg;
    cfg.threads = threads;
    auto comp = PfpcCompressor::Make(cfg);
    Buffer c, d;
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    // Decompress with a *different* thread count must still work.
    CompressorConfig cfg2;
    cfg2.threads = 3;
    auto comp2 = PfpcCompressor::Make(cfg2);
    ASSERT_TRUE(comp2->Decompress(c.span(), desc, &d).ok());
    EXPECT_EQ(std::memcmp(d.data(), v.data(), v.size() * 8), 0)
        << threads << " threads";
  }
}

TEST(PfpcTest, MoreThreadsLowerRatioOnCorrelatedData) {
  // §3.6: mixing values from multiple dimensions across big chunks can
  // decrease the ratio; with 1 thread the predictor sees the full history.
  auto v = SmoothField3D<double>(8, 64, 64, 59);
  auto desc = DataDesc::Make(DType::kFloat64, {8, 64, 64});
  CompressorConfig one;
  one.threads = 1;
  CompressorConfig many;
  many.threads = 16;
  auto c1 = PfpcCompressor::Make(one);
  auto c16 = PfpcCompressor::Make(many);
  double r1 = Ratio(*c1, AsBytes(v), desc);
  double r16 = Ratio(*c16, AsBytes(v), desc);
  EXPECT_GE(r1, r16 * 0.95);  // single-thread at least comparable
}

// ---------------------------------------------------------------------------
// Block-size knob (Table 10 dependence)

TEST(BlockSizeTest, BitshuffleRatioImprovesWithBlockSize) {
  auto v = RandomWalk<double>(1 << 17, 61);
  auto desc = DataDesc::Make(DType::kFloat64, {1 << 17});
  double prev = 0;
  for (size_t bs : {size_t(4096), size_t(65536), size_t(1 << 20)}) {
    CompressorConfig cfg;
    cfg.block_size = bs;
    auto comp = BitshuffleCompressor::MakeZstd(cfg);
    Buffer c;
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    double cr = static_cast<double>(v.size() * 8) / c.size();
    EXPECT_GT(cr, prev * 0.9) << "bs=" << bs;
    prev = cr;
  }
}

// ---------------------------------------------------------------------------
// Error handling

TEST(ErrorTest, CorruptStreamsDoNotCrash) {
  auto v = RandomWalk<double>(8192, 67);
  auto desc = DataDesc::Make(DType::kFloat64, {8192});
  for (auto& m : AllMethods()) {
    auto comp = m.make();
    Buffer c;
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    Buffer copy = Buffer::FromSpan(c.span());
    // Truncations and bit flips must be memory-safe.
    for (size_t cut : {c.size() / 2, c.size() / 4, size_t(3)}) {
      Buffer d;
      (void)comp->Decompress(c.span().subspan(0, cut), desc, &d);
    }
    for (size_t victim = 0; victim < copy.size(); victim += 211) {
      copy.data()[victim] ^= 0x80;
      Buffer d;
      (void)comp->Decompress(copy.span(), desc, &d);
      copy.data()[victim] ^= 0x80;
    }
  }
}

TEST(ErrorTest, EmptyInputRoundTrips) {
  auto desc = DataDesc::Make(DType::kFloat64, {0});
  for (auto& m : AllMethods()) {
    auto comp = m.make();
    Buffer c, d;
    ASSERT_TRUE(comp->Compress(ByteSpan(), desc, &c).ok()) << m.name;
    ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok()) << m.name;
    EXPECT_EQ(d.size(), 0u) << m.name;
  }
}

}  // namespace
}  // namespace fcbench::compressors
