#ifndef FCBENCH_TESTS_TEST_NAMES_H_
#define FCBENCH_TESTS_TEST_NAMES_H_

#include <string>

namespace fcbench {

/// gtest parameterized-test names must be alphanumeric/underscore;
/// registry names like "par-gorilla" are not. Shared by every suite that
/// instantiates over CompressorRegistry names.
inline std::string SanitizeTestName(std::string name) {
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

}  // namespace fcbench

#endif  // FCBENCH_TESTS_TEST_NAMES_H_
