// IEEE-754 edge-case suite: lossless means *bit-exact on every encodable
// pattern*, including NaNs with arbitrary payloads, signed infinities and
// zeros, denormals, and fully random bit patterns. Every studied method
// except BUFF (documented lossy-without-precision exception, §3.3)
// operates on raw bit patterns and must reproduce them exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/compressor.h"
#include "test_names.h"
#include "util/rng.h"

namespace fcbench {
namespace {

enum class SpecialPattern {
  kAllNaN,
  kNaNPayloads,
  kInfinities,
  kSignedZeros,
  kDenormals,
  kExtremes,
  kRandomBits,
};

const char* PatternName(SpecialPattern p) {
  switch (p) {
    case SpecialPattern::kAllNaN: return "AllNaN";
    case SpecialPattern::kNaNPayloads: return "NaNPayloads";
    case SpecialPattern::kInfinities: return "Infinities";
    case SpecialPattern::kSignedZeros: return "SignedZeros";
    case SpecialPattern::kDenormals: return "Denormals";
    case SpecialPattern::kExtremes: return "Extremes";
    case SpecialPattern::kRandomBits: return "RandomBits";
  }
  return "?";
}

template <typename W>
std::vector<uint8_t> MakeWords(SpecialPattern p, size_t count) {
  constexpr int kWidth = sizeof(W) * 8;
  constexpr int kMantissa = (kWidth == 64) ? 52 : 23;
  const W exp_mask = ((W(1) << (kWidth - 1 - kMantissa)) - 1) << kMantissa;
  const W quiet_bit = W(1) << (kMantissa - 1);
  const W sign_bit = W(1) << (kWidth - 1);

  Rng rng(static_cast<uint64_t>(p) + count);
  std::vector<W> words(count);
  for (size_t i = 0; i < count; ++i) {
    switch (p) {
      case SpecialPattern::kAllNaN:
        words[i] = exp_mask | quiet_bit;
        break;
      case SpecialPattern::kNaNPayloads:
        // Quiet and signaling payload bits, alternating signs.
        words[i] = exp_mask | (static_cast<W>(rng.Next()) &
                               ((W(1) << kMantissa) - 1));
        if (words[i] == exp_mask) words[i] |= 1;  // keep it a NaN
        if (i % 2 == 1) words[i] |= sign_bit;
        break;
      case SpecialPattern::kInfinities:
        words[i] = (i % 3 == 0)   ? exp_mask
                   : (i % 3 == 1) ? (exp_mask | sign_bit)
                                  : static_cast<W>(i);
        break;
      case SpecialPattern::kSignedZeros:
        words[i] = (i % 2 == 0) ? W(0) : sign_bit;
        break;
      case SpecialPattern::kDenormals:
        // Subnormals: zero exponent, tiny mantissa ramp around zero.
        words[i] = static_cast<W>(i % 1021 + 1);
        if (i % 2 == 1) words[i] |= sign_bit;
        break;
      case SpecialPattern::kExtremes: {
        const W max_finite = exp_mask - 1;             // largest finite
        const W min_normal = W(1) << kMantissa;        // smallest normal
        const W cases[4] = {max_finite, max_finite | sign_bit, min_normal,
                            min_normal | sign_bit};
        words[i] = cases[i % 4];
        break;
      }
      case SpecialPattern::kRandomBits:
        words[i] = static_cast<W>(rng.Next());
        break;
    }
  }
  std::vector<uint8_t> bytes(count * sizeof(W));
  std::memcpy(bytes.data(), words.data(), bytes.size());
  return bytes;
}

class SpecialValues
    : public ::testing::TestWithParam<
          std::tuple<std::string, SpecialPattern, bool>> {};

TEST_P(SpecialValues, BitExactRoundTrip) {
  RegisterAllCompressors();
  auto [method, pattern, f64] = GetParam();
  CompressorConfig cfg;
  cfg.threads = 2;
  auto comp = CompressorRegistry::Global().Create(method, cfg).TakeValue();
  if (method == "buff") {
    GTEST_SKIP() << "BUFF quantizes; documented non-bit-exact exception";
  }
  if (f64 && !comp->traits().supports_f64) GTEST_SKIP();
  if (!f64 && !comp->traits().supports_f32) GTEST_SKIP();

  DataDesc desc;
  desc.dtype = f64 ? DType::kFloat64 : DType::kFloat32;
  const size_t count = method == "dzip_nn" ? 128 : 1024;
  desc.extent = {count};
  auto input = f64 ? MakeWords<uint64_t>(pattern, count)
                   : MakeWords<uint32_t>(pattern, count);

  Buffer comp_out;
  Status cst =
      comp->Compress(ByteSpan(input.data(), input.size()), desc, &comp_out);
  ASSERT_TRUE(cst.ok()) << method << "/" << PatternName(pattern) << ": "
                        << cst.ToString();
  Buffer decomp;
  Status dst = comp->Decompress(comp_out.span(), desc, &decomp);
  ASSERT_TRUE(dst.ok()) << method << "/" << PatternName(pattern) << ": "
                        << dst.ToString();
  ASSERT_EQ(decomp.size(), input.size());
  EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0)
      << method << " altered " << PatternName(pattern) << " bit patterns";
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, SpecialValues,
    ::testing::Combine(
        ::testing::ValuesIn([] {
          RegisterAllCompressors();
          return CompressorRegistry::Global().Names();
        }()),
        ::testing::Values(
            SpecialPattern::kAllNaN, SpecialPattern::kNaNPayloads,
            SpecialPattern::kInfinities, SpecialPattern::kSignedZeros,
            SpecialPattern::kDenormals, SpecialPattern::kExtremes,
            SpecialPattern::kRandomBits),
        ::testing::Bool()),
    [](const auto& param_info) {
      return SanitizeTestName(std::get<0>(param_info.param) + "_" +
                              PatternName(std::get<1>(param_info.param)) +
                              (std::get<2>(param_info.param) ? "_f64"
                                                             : "_f32"));
    });

}  // namespace
}  // namespace fcbench
