// Byte-identity regression suite for the bit-level wire formats.
//
// The bit I/O engine is a pure speed layer: any change to it (or to the
// fused control-code emission in the coders above it) must leave compressed
// streams byte-for-byte identical. These tests compare freshly compressed
// Gorilla / Chimp / GorillaTimestamps streams against fixtures captured
// from the pre-refactor one-bit-at-a-time encoders
// (tests/wire_format_fixtures.h), so wire-format drift fails CI loudly
// instead of silently breaking every previously written stream.
//
// The input generators deliberately avoid libm (sin/log/...) — only Rng
// integer output and IEEE add/mul — so the corpus, and therefore the
// compressed bytes, are identical on every platform.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compressors/chimp.h"
#include "compressors/gorilla.h"
#include "compressors/gorilla_timestamps.h"
#include "util/hash.h"
#include "util/rng.h"
#include "wire_format_fixtures.h"

namespace fcbench {
namespace {

using compressors::ChimpCompressor;
using compressors::GorillaCompressor;
using compressors::GorillaTimestampCodec;

// Must match the fixture capture tool exactly (see fixtures header).
template <typename T>
std::vector<T> Walk(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  double x = 100.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Uniform(-0.25, 0.25);
    if (i % 64 == 0) x += rng.Uniform(0.0, 8.0);
    v[i] = static_cast<T>(x);
  }
  return v;
}

std::vector<int64_t> Stamps(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  int64_t t = 1600000000000;
  for (size_t i = 0; i < n; ++i) {
    t += 1000 + static_cast<int64_t>(rng.UniformInt(7)) - 3;
    if (i % 97 == 0) t += 50000;  // occasional gap -> exercises buckets
    v[i] = t;
  }
  return v;
}

template <typename C, typename T>
Buffer CompressVals(const std::vector<T>& vals) {
  CompressorConfig cfg;
  C comp(cfg);
  DataDesc desc = DataDesc::Make(
      sizeof(T) == 4 ? DType::kFloat32 : DType::kFloat64, {vals.size()});
  Buffer out;
  EXPECT_TRUE(comp.Compress(AsBytes(vals), desc, &out).ok());
  return out;
}

void ExpectBytesEqual(const Buffer& got, const unsigned char* want,
                      size_t want_size, const char* name) {
  ASSERT_EQ(got.size(), want_size) << name << ": stream length drifted";
  for (size_t i = 0; i < want_size; ++i) {
    ASSERT_EQ(got.data()[i], want[i])
        << name << ": wire format drift at byte " << i;
  }
}

TEST(WireFormatTest, GorillaFloat64ByteIdentical) {
  Buffer got = CompressVals<GorillaCompressor>(Walk<double>(256, 0xF1C5));
  ExpectBytesEqual(got, wire_fixtures::kGorillaF64,
                   sizeof(wire_fixtures::kGorillaF64), "gorilla/f64");
}

TEST(WireFormatTest, GorillaFloat32ByteIdentical) {
  Buffer got = CompressVals<GorillaCompressor>(Walk<float>(256, 0xF1C5));
  ExpectBytesEqual(got, wire_fixtures::kGorillaF32,
                   sizeof(wire_fixtures::kGorillaF32), "gorilla/f32");
}

TEST(WireFormatTest, ChimpFloat64ByteIdentical) {
  Buffer got = CompressVals<ChimpCompressor>(Walk<double>(256, 0xF1C5));
  ExpectBytesEqual(got, wire_fixtures::kChimpF64,
                   sizeof(wire_fixtures::kChimpF64), "chimp/f64");
}

TEST(WireFormatTest, ChimpFloat32ByteIdentical) {
  Buffer got = CompressVals<ChimpCompressor>(Walk<float>(256, 0xF1C5));
  ExpectBytesEqual(got, wire_fixtures::kChimpF32,
                   sizeof(wire_fixtures::kChimpF32), "chimp/f32");
}

TEST(WireFormatTest, GorillaTimestampsByteIdentical) {
  Buffer got;
  GorillaTimestampCodec::Compress(Stamps(256, 0xF1C5), &got);
  ExpectBytesEqual(got, wire_fixtures::kGorillaTs,
                   sizeof(wire_fixtures::kGorillaTs), "gorilla_ts");
}

// Large corpora (64Ki values) exercise every control code and window-reuse
// path; full arrays would bloat the repo, so these pin size + xxHash64.
TEST(WireFormatTest, GorillaLargeCorpusHashPinned) {
  Buffer got = CompressVals<GorillaCompressor>(Walk<double>(65536, 0xB16));
  EXPECT_EQ(got.size(), wire_fixtures::kGorillaBigSize);
  EXPECT_EQ(XxHash64(got.span()), wire_fixtures::kGorillaBigHash);
}

TEST(WireFormatTest, ChimpLargeCorpusHashPinned) {
  Buffer got = CompressVals<ChimpCompressor>(Walk<double>(65536, 0xB16));
  EXPECT_EQ(got.size(), wire_fixtures::kChimpBigSize);
  EXPECT_EQ(XxHash64(got.span()), wire_fixtures::kChimpBigHash);
}

TEST(WireFormatTest, GorillaTimestampsLargeCorpusHashPinned) {
  Buffer got;
  GorillaTimestampCodec::Compress(Stamps(65536, 0xB16), &got);
  EXPECT_EQ(got.size(), wire_fixtures::kGorillaTsBigSize);
  EXPECT_EQ(XxHash64(got.span()), wire_fixtures::kGorillaTsBigHash);
}

// The decoders must also read the frozen streams back to the exact inputs
// (guards against compensating encoder+decoder changes that round-trip but
// break streams written by older builds).
TEST(WireFormatTest, FixtureStreamsDecodeToOriginalValues) {
  auto vals = Walk<double>(256, 0xF1C5);
  CompressorConfig cfg;
  GorillaCompressor gorilla(cfg);
  DataDesc desc = DataDesc::Make(DType::kFloat64, {vals.size()});
  Buffer out;
  ASSERT_TRUE(gorilla
                  .Decompress(ByteSpan(wire_fixtures::kGorillaF64,
                                       sizeof(wire_fixtures::kGorillaF64)),
                              desc, &out)
                  .ok());
  ASSERT_EQ(out.size(), vals.size() * sizeof(double));
  EXPECT_EQ(std::memcmp(out.data(), vals.data(), out.size()), 0);

  ChimpCompressor chimp(cfg);
  Buffer out2;
  ASSERT_TRUE(chimp
                  .Decompress(ByteSpan(wire_fixtures::kChimpF64,
                                       sizeof(wire_fixtures::kChimpF64)),
                              desc, &out2)
                  .ok());
  ASSERT_EQ(out2.size(), vals.size() * sizeof(double));
  EXPECT_EQ(std::memcmp(out2.data(), vals.data(), out2.size()), 0);

  auto ts = Stamps(256, 0xF1C5);
  auto got = GorillaTimestampCodec::Decompress(
      ByteSpan(wire_fixtures::kGorillaTs, sizeof(wire_fixtures::kGorillaTs)),
      ts.size());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), ts);
}

}  // namespace
}  // namespace fcbench
