// Tests for the frame-based streaming API (core/streaming.h): the
// in-situ per-time-step pipeline of paper §1.1.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/streaming.h"
#include "test_names.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace fcbench {
namespace {

std::vector<uint8_t> TimeStep(uint64_t step, size_t count) {
  Rng rng(step);
  std::vector<uint8_t> bytes(count * 8);
  double x = 100.0 + static_cast<double>(step);
  for (size_t i = 0; i < count; ++i) {
    x += rng.Normal() * 0.01;
    std::memcpy(&bytes[i * 8], &x, 8);
  }
  return bytes;
}

class StreamingRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamingRoundTrip, ManyFramesDecodeInOrder) {
  RegisterAllCompressors();
  const std::string method = GetParam();
  if (method == "dzip_nn") GTEST_SKIP() << "slow; same path as others";
  auto traits =
      CompressorRegistry::Global().Create(method).TakeValue()->traits();
  if (!traits.supports_f64) GTEST_SKIP();
  if (method == "buff") GTEST_SKIP() << "quantizing exception";

  auto writer = StreamWriter::Open(method);
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  std::vector<std::vector<uint8_t>> steps;
  for (uint64_t s = 0; s < 10; ++s) {
    steps.push_back(TimeStep(s, 512 + s * 37));  // varying chunk sizes
    ASSERT_TRUE(writer.value()
                    .Append(ByteSpan(steps.back().data(),
                                     steps.back().size()),
                            DType::kFloat64, &stream)
                    .ok());
  }
  EXPECT_EQ(writer.value().frame_bytes(), stream.size());

  auto reader = StreamReader::Open(method);
  ASSERT_TRUE(reader.ok());
  for (uint64_t s = 0; s < 10; ++s) {
    ASSERT_TRUE(reader.value().HasNext(stream.span()));
    Buffer out;
    ASSERT_TRUE(reader.value().Next(stream.span(), &out).ok())
        << method << " frame " << s;
    ASSERT_EQ(out.size(), steps[s].size());
    EXPECT_EQ(std::memcmp(out.data(), steps[s].data(), out.size()), 0)
        << method << " frame " << s;
  }
  EXPECT_FALSE(reader.value().HasNext(stream.span()));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, StreamingRoundTrip,
    ::testing::ValuesIn([] {
      RegisterAllCompressors();
      return CompressorRegistry::Global().Names();
    }()),
    [](const auto& param_info) { return SanitizeTestName(param_info.param); });

TEST(StreamingTest, MixedDtypesInOneStream) {
  RegisterAllCompressors();
  auto writer = StreamWriter::Open("bitshuffle_lz4");
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  std::vector<float> f32s = {1.5f, 2.5f, 3.5f, 4.5f};
  std::vector<double> f64s = {1.25, 2.25, 3.25};
  ASSERT_TRUE(writer.value()
                  .Append(AsBytes(f32s), DType::kFloat32, &stream)
                  .ok());
  ASSERT_TRUE(writer.value()
                  .Append(AsBytes(f64s), DType::kFloat64, &stream)
                  .ok());

  auto reader = StreamReader::Open("bitshuffle_lz4");
  ASSERT_TRUE(reader.ok());
  Buffer a, b;
  ASSERT_TRUE(reader.value().Next(stream.span(), &a).ok());
  ASSERT_TRUE(reader.value().Next(stream.span(), &b).ok());
  EXPECT_EQ(a.size(), f32s.size() * 4);
  EXPECT_EQ(b.size(), f64s.size() * 8);
  EXPECT_EQ(std::memcmp(a.data(), f32s.data(), a.size()), 0);
  EXPECT_EQ(std::memcmp(b.data(), f64s.data(), b.size()), 0);
}

TEST(StreamingTest, CorruptFrameDoesNotPoisonLaterFrames) {
  RegisterAllCompressors();
  auto writer = StreamWriter::Open("gorilla");
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  auto step0 = TimeStep(0, 256);
  ASSERT_TRUE(writer.value()
                  .Append(ByteSpan(step0.data(), step0.size()),
                          DType::kFloat64, &stream)
                  .ok());
  size_t frame0_end = stream.size();
  auto step1 = TimeStep(1, 256);
  ASSERT_TRUE(writer.value()
                  .Append(ByteSpan(step1.data(), step1.size()),
                          DType::kFloat64, &stream)
                  .ok());

  // Corrupt a payload byte inside frame 0.
  stream.data()[frame0_end - 5] ^= 0xff;
  auto reader = StreamReader::Open("gorilla");
  ASSERT_TRUE(reader.ok());
  Buffer out;
  auto st = reader.value().Next(stream.span(), &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);

  // Skipping to the second frame still works: a reader that knows the
  // frame boundary (e.g. from a directory) can resume.
  auto resumed = StreamReader::Open("gorilla");
  ASSERT_TRUE(resumed.ok());
  Buffer skip;
  // Consume frame 0 from a pristine copy to learn its extent, then read
  // frame 1 from the corrupted stream starting at that offset.
  Buffer pristine = Buffer::FromSpan(stream.span());
  pristine.data()[frame0_end - 5] ^= 0xff;  // undo
  ASSERT_TRUE(resumed.value().Next(pristine.span(), &skip).ok());
  Buffer out1;
  ASSERT_TRUE(resumed.value().Next(stream.span(), &out1).ok());
  EXPECT_EQ(std::memcmp(out1.data(), step1.data(), out1.size()), 0);
}

TEST(StreamingTest, RejectsMisalignedChunk) {
  RegisterAllCompressors();
  auto writer = StreamWriter::Open("gorilla");
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  std::vector<uint8_t> bytes(13);  // not a whole f64 count
  auto st = writer.value().Append(ByteSpan(bytes.data(), bytes.size()),
                                  DType::kFloat64, &stream);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StreamingTest, UnknownMethodRejected) {
  EXPECT_FALSE(StreamWriter::Open("no_such_method").ok());
  EXPECT_FALSE(StreamReader::Open("no_such_method").ok());
  EXPECT_FALSE(StreamWriter::OpenChunked("no_such_method").ok());
  EXPECT_FALSE(StreamReader::OpenChunked("no_such_method").ok());
}

TEST(StreamingTest, ChunkedFramesRoundTripAndAreThreadCountInvariant) {
  RegisterAllCompressors();
  // Chunked writer wraps a method without a registered par- variant too;
  // frames must round-trip and the stream bytes must not depend on the
  // thread budget.
  CompressorConfig cfg2;
  cfg2.threads = 2;
  cfg2.chunk_bytes = 2048;  // several chunks per frame
  auto writer = StreamWriter::OpenChunked("gorilla", cfg2);
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  std::vector<std::vector<uint8_t>> steps;
  for (uint64_t s = 0; s < 4; ++s) {
    steps.push_back(TimeStep(s, 1500 + s * 41));
    ASSERT_TRUE(writer.value()
                    .Append(ByteSpan(steps.back().data(),
                                     steps.back().size()),
                            DType::kFloat64, &stream)
                    .ok());
  }

  CompressorConfig cfg8 = cfg2;
  cfg8.threads = 8;
  auto writer8 = StreamWriter::OpenChunked("gorilla", cfg8);
  ASSERT_TRUE(writer8.ok());
  Buffer stream8;
  for (uint64_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(writer8.value()
                    .Append(ByteSpan(steps[s].data(), steps[s].size()),
                            DType::kFloat64, &stream8)
                    .ok());
  }
  ASSERT_EQ(stream.size(), stream8.size());
  EXPECT_EQ(std::memcmp(stream.data(), stream8.data(), stream.size()), 0)
      << "chunked frame bytes depend on thread count";

  auto reader = StreamReader::OpenChunked("gorilla", cfg8);
  ASSERT_TRUE(reader.ok());
  for (uint64_t s = 0; s < 4; ++s) {
    Buffer out;
    ASSERT_TRUE(reader.value().Next(stream.span(), &out).ok()) << s;
    ASSERT_EQ(out.size(), steps[s].size());
    EXPECT_EQ(std::memcmp(out.data(), steps[s].data(), out.size()), 0) << s;
  }
  EXPECT_FALSE(reader.value().HasNext(stream.span()));
}

TEST(StreamingTest, FailedDecodeRollsBackPartialOutput) {
  RegisterAllCompressors();
  auto writer = StreamWriter::Open("gorilla");
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  auto step0 = TimeStep(0, 256);
  ASSERT_TRUE(writer.value()
                  .Append(ByteSpan(step0.data(), step0.size()),
                          DType::kFloat64, &stream)
                  .ok());
  const size_t frame0_end = stream.size();
  auto step1 = TimeStep(1, 256);
  ASSERT_TRUE(writer.value()
                  .Append(ByteSpan(step1.data(), step1.size()),
                          DType::kFloat64, &stream)
                  .ok());

  // Rebuild frame 1 claiming far more raw bytes than its bitstream
  // holds. The frame checksum covers only the payload, so it still
  // verifies; the decoder runs off the end of the bitstream mid-frame
  // and fails *after* producing partial output — which Next must roll
  // back rather than leave in the caller's buffer.
  size_t off = frame0_end;
  uint64_t raw_bytes = 0, payload_len = 0, hash = 0;
  uint8_t dtype_byte = 0;
  ASSERT_TRUE(GetVarint64(stream.span(), &off, &raw_bytes));
  ASSERT_TRUE(GetFixed(stream.span(), &off, &dtype_byte));
  ASSERT_TRUE(GetVarint64(stream.span(), &off, &payload_len));
  ASSERT_TRUE(GetFixed(stream.span(), &off, &hash));
  Buffer tampered;
  tampered.Append(stream.span().subspan(0, frame0_end));
  PutVarint64(&tampered, raw_bytes + 8 * 1024);
  tampered.PushBack(dtype_byte);
  PutVarint64(&tampered, payload_len);
  PutFixed(&tampered, hash);
  tampered.Append(stream.span().subspan(off, payload_len));

  auto reader = StreamReader::Open("gorilla");
  ASSERT_TRUE(reader.ok());
  Buffer out;
  ASSERT_TRUE(reader.value().Next(tampered.span(), &out).ok());
  ASSERT_EQ(out.size(), step0.size());

  auto st = reader.value().Next(tampered.span(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  // Rollback contract: `out` holds exactly the frames that decoded
  // successfully — no partial tail from the failed frame.
  ASSERT_EQ(out.size(), step0.size());
  EXPECT_EQ(std::memcmp(out.data(), step0.data(), out.size()), 0);
}

}  // namespace
}  // namespace fcbench
