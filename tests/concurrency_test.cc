// Concurrency tests: the registry and independent compressor instances
// must be safe to use from many threads at once (the in-situ pipeline of
// §1.1 compresses one stream per simulation rank). Run under TSan for the
// full guarantee; these tests make races observable as data corruption
// even without it.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/chunked.h"
#include "core/compressor.h"
#include "db/lsm/lsm_engine.h"
#include "select/auto_compressor.h"
#include "select/selector.h"
#include "util/fs.h"
#include "util/rng.h"

namespace fcbench {
namespace {

std::vector<uint8_t> ThreadData(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(count * 8);
  double x = 10.0 * static_cast<double>(seed + 1);
  for (size_t i = 0; i < count; ++i) {
    x += rng.Normal();
    std::memcpy(&bytes[i * 8], &x, 8);
  }
  return bytes;
}

TEST(ConcurrencyTest, RegistryCreateFromManyThreads) {
  RegisterAllCompressors();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        for (const auto& name : CompressorRegistry::Global().Names()) {
          auto c = CompressorRegistry::Global().Create(name);
          if (!c.ok() || c.value() == nullptr) ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, IndependentInstancesRoundTripInParallel) {
  RegisterAllCompressors();
  // One thread per method; each compresses its own distinct stream many
  // times and verifies bit-exactness. Any shared mutable state between
  // instances shows up as a mismatch.
  std::vector<std::string> methods;
  for (const auto& name : CompressorRegistry::Global().Names()) {
    if (name != "dzip_nn" && name != "buff") methods.push_back(name);
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t m = 0; m < methods.size(); ++m) {
    threads.emplace_back([&, m] {
      CompressorConfig cfg;
      cfg.threads = 2;  // nested pools: thread-per-method x pool-per-call
      auto comp =
          CompressorRegistry::Global().Create(methods[m], cfg).TakeValue();
      DataDesc desc;
      desc.dtype = DType::kFloat64;
      desc.extent = {2048};
      for (int round = 0; round < 10; ++round) {
        auto input = ThreadData(m * 100 + round, 2048);
        Buffer enc, dec;
        if (!comp->Compress(ByteSpan(input.data(), input.size()), desc,
                            &enc)
                 .ok() ||
            !comp->Decompress(enc.span(), desc, &dec).ok() ||
            dec.size() != input.size() ||
            std::memcmp(dec.data(), input.data(), input.size()) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, SharedInstanceSequentialReuse) {
  // The API contract is one call at a time per instance, but an instance
  // must be reusable across many (desc, data) pairs without state leaking
  // between calls.
  RegisterAllCompressors();
  for (const auto& name : CompressorRegistry::Global().Names()) {
    if (name == "dzip_nn") continue;
    auto comp = CompressorRegistry::Global().Create(name).TakeValue();
    for (size_t count : {7u, 1024u, 333u, 4096u}) {
      DataDesc desc;
      desc.dtype = DType::kFloat64;
      desc.extent = {count};
      desc.precision_digits = 10;
      auto input = ThreadData(count, count);
      Buffer enc, dec;
      ASSERT_TRUE(
          comp->Compress(ByteSpan(input.data(), input.size()), desc, &enc)
              .ok())
          << name << " count=" << count;
      ASSERT_TRUE(comp->Decompress(enc.span(), desc, &dec).ok())
          << name << " count=" << count;
      if (name == "buff") continue;  // quantizing exception
      ASSERT_EQ(dec.size(), input.size()) << name;
      EXPECT_EQ(std::memcmp(dec.data(), input.data(), input.size()), 0)
          << name << " state leaked between calls (count=" << count << ")";
    }
  }
}

TEST(ConcurrencyTest, ProbeOnlySelectorSharedAcrossThreadsCountsExactly) {
  // Pin for the hits_/misses_ counter data race: the fields are atomic,
  // so with the decision cache disabled (cache_capacity = 0) Choose
  // mutates nothing but those counters and a probe-only Selector is
  // safe to share across threads (the documented exception to the
  // one-writer contract in selector.h). The TSan lane proves the
  // absence of the race; the exact-count assertion catches lost
  // updates even in plain builds.
  RegisterAllCompressors();
  select::Selector::Config cfg;
  cfg.cache_capacity = 0;
  select::Selector sel(cfg);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 8;  // each Choose probes every candidate
  std::vector<std::thread> threads;
  std::atomic<size_t> decided{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sel, &decided, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const auto input = ThreadData(t * 131 + i, 2048);
        DataDesc desc;
        desc.dtype = DType::kFloat64;
        desc.extent = {input.size() / sizeof(double)};
        auto d = sel.Choose(ByteSpan(input.data(), input.size()), desc);
        if (!d.method.empty()) decided.fetch_add(1);
        // Concurrent reads of the counters race a Choose in flight.
        (void)sel.cache_hits();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(decided.load(), kThreads * kPerThread);
  // Every call missed (no cache), and no increment was lost.
  EXPECT_EQ(sel.cache_hits(), 0u);
  EXPECT_EQ(sel.cache_misses(), kThreads * kPerThread);
}

// --- chunk-parallel adapter -------------------------------------------------

std::vector<uint8_t> ChunkTestData(size_t count) { return ThreadData(77, count); }

DataDesc ChunkDesc(size_t count) {
  DataDesc desc;
  desc.dtype = DType::kFloat64;
  desc.extent = {count};
  return desc;
}

/// Small chunks so even modest inputs span many chunks.
CompressorConfig ChunkConfig(int threads) {
  CompressorConfig cfg;
  cfg.threads = threads;
  cfg.chunk_bytes = 4096;  // 512 f64 elements per chunk
  return cfg;
}

TEST(ChunkedTest, RoundTripAcrossThreadCounts) {
  RegisterAllCompressors();
  constexpr size_t kCount = 5000;  // 9 full chunks + a short tail
  const auto input = ChunkTestData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  for (const char* method : {"par-gorilla", "par-pfpc", "par-bitshuffle_lz4",
                             "par-ndzip_cpu", "par-chimp128"}) {
    for (int threads : {1, 2, 8}) {
      auto comp = CompressorRegistry::Global()
                      .Create(method, ChunkConfig(threads))
                      .TakeValue();
      Buffer enc, dec;
      ASSERT_TRUE(comp->Compress(ByteSpan(input.data(), input.size()), desc,
                                 &enc)
                      .ok())
          << method << " threads=" << threads;
      ASSERT_TRUE(comp->Decompress(enc.span(), desc, &dec).ok())
          << method << " threads=" << threads;
      ASSERT_EQ(dec.size(), input.size()) << method;
      EXPECT_EQ(std::memcmp(dec.data(), input.data(), input.size()), 0)
          << method << " threads=" << threads;
    }
  }
}

TEST(ChunkedTest, OutputByteIdenticalAcrossThreadCounts) {
  RegisterAllCompressors();
  constexpr size_t kCount = 5000;
  const auto input = ChunkTestData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  // pfpc is the one wrapped format whose own layout is thread-sensitive;
  // the adapter must insulate the container from that too.
  for (const char* method : {"par-gorilla", "par-pfpc"}) {
    Buffer reference;
    ASSERT_TRUE(CompressorRegistry::Global()
                    .Create(method, ChunkConfig(1))
                    .TakeValue()
                    ->Compress(ByteSpan(input.data(), input.size()), desc,
                               &reference)
                    .ok());
    for (int threads : {2, 8}) {
      Buffer enc;
      ASSERT_TRUE(CompressorRegistry::Global()
                      .Create(method, ChunkConfig(threads))
                      .TakeValue()
                      ->Compress(ByteSpan(input.data(), input.size()), desc,
                                 &enc)
                      .ok());
      ASSERT_EQ(enc.size(), reference.size())
          << method << ": stream length depends on thread count";
      EXPECT_EQ(std::memcmp(enc.data(), reference.data(), enc.size()), 0)
          << method << ": bytes depend on thread count (threads=" << threads
          << ")";
    }
  }
}

TEST(ChunkedTest, TruncatedAndCorruptedDirectoryFailCleanly) {
  RegisterAllCompressors();
  constexpr size_t kCount = 5000;
  const auto input = ChunkTestData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  auto comp = CompressorRegistry::Global()
                  .Create("par-gorilla", ChunkConfig(2))
                  .TakeValue();
  Buffer enc;
  ASSERT_TRUE(
      comp->Compress(ByteSpan(input.data(), input.size()), desc, &enc).ok());

  // Truncations everywhere in the header/directory region (and a few in
  // the payloads) must decode to an error, never a crash or silent
  // success.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{4}, size_t{9}, size_t{17},
                      enc.size() / 2, enc.size() - 1}) {
    Buffer dec;
    Status st = comp->Decompress(enc.span().subspan(0, keep), desc, &dec);
    EXPECT_FALSE(st.ok()) << "truncated to " << keep << " bytes";
  }
  // Bit flips anywhere in the header + directory + checksum region must
  // all be caught by the directory checksum (payload integrity is the
  // wrapped method's concern).
  auto idx = ChunkedCompressor::ReadIndex(enc.span());
  ASSERT_TRUE(idx.ok());
  const size_t dir_end = idx.value().payload_offsets[0];
  for (size_t victim = 0; victim < dir_end; ++victim) {
    Buffer copy = Buffer::FromSpan(enc.span());
    copy.data()[victim] ^= 0x40;
    Buffer dec;
    Status st = comp->Decompress(copy.span(), desc, &dec);
    EXPECT_FALSE(st.ok()) << "flip at byte " << victim
                          << " decoded successfully";
  }
}

TEST(ChunkedTest, RandomAccessChunkDecodeMatchesFull) {
  RegisterAllCompressors();
  constexpr size_t kCount = 5000;
  const auto input = ChunkTestData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  ChunkedCompressor comp("gorilla", ChunkConfig(2));
  Buffer enc;
  ASSERT_TRUE(
      comp.Compress(ByteSpan(input.data(), input.size()), desc, &enc).ok());

  auto idx = ChunkedCompressor::ReadIndex(enc.span());
  ASSERT_TRUE(idx.ok());
  ASSERT_EQ(idx.value().num_chunks(), 10u);  // ceil(5000 / 512)

  uint64_t raw_off = 0;
  for (size_t c = 0; c < idx.value().num_chunks(); ++c) {
    Buffer chunk;
    ASSERT_TRUE(comp.DecompressChunk(enc.span(), desc, c, &chunk).ok())
        << "chunk " << c;
    uint64_t want = idx.value().RawSizeOfChunk(c);
    ASSERT_EQ(chunk.size(), want) << "chunk " << c;
    EXPECT_EQ(std::memcmp(chunk.data(), input.data() + raw_off, want), 0)
        << "chunk " << c << " differs from the full decode";
    raw_off += want;
  }
  EXPECT_EQ(raw_off, input.size());

  Buffer oob;
  EXPECT_FALSE(
      comp.DecompressChunk(enc.span(), desc, idx.value().num_chunks(), &oob)
          .ok());
}

// --- mixed-method (auto) frames ---------------------------------------------

/// Two-regime corpus: a smooth sensor walk followed by high-entropy
/// random bits, so a per-chunk selector has a real reason to switch
/// methods mid-stream.
std::vector<uint8_t> TwoRegimeData(size_t count) {
  Rng rng(123);
  std::vector<uint8_t> bytes(count * 8);
  double x = 500.0;
  for (size_t i = 0; i < count / 2; ++i) {
    x += rng.Normal() * 0.25;
    std::memcpy(&bytes[i * 8], &x, 8);
  }
  for (size_t i = count / 2; i < count; ++i) {
    uint64_t w = rng.Next() >> 4;  // positive finite doubles
    std::memcpy(&bytes[i * 8], &w, 8);
  }
  return bytes;
}

TEST(ChunkedTest, AutoRoundTripsByteIdenticallyAcrossThreadCounts) {
  RegisterAllCompressors();
  constexpr size_t kCount = 5000;
  const auto input = TwoRegimeData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  for (const char* method : {"auto", "auto-speed", "auto-ratio"}) {
    Buffer reference;
    ASSERT_TRUE(CompressorRegistry::Global()
                    .Create(method, ChunkConfig(1))
                    .TakeValue()
                    ->Compress(ByteSpan(input.data(), input.size()), desc,
                               &reference)
                    .ok())
        << method;
    for (int threads : {2, 8}) {
      Buffer enc, dec;
      auto comp = CompressorRegistry::Global()
                      .Create(method, ChunkConfig(threads))
                      .TakeValue();
      ASSERT_TRUE(comp->Compress(ByteSpan(input.data(), input.size()), desc,
                                 &enc)
                      .ok())
          << method << " threads=" << threads;
      ASSERT_EQ(enc.size(), reference.size())
          << method << ": mixed-frame length depends on thread count";
      EXPECT_EQ(std::memcmp(enc.data(), reference.data(), enc.size()), 0)
          << method << ": mixed-frame bytes depend on thread count";
      ASSERT_TRUE(comp->Decompress(enc.span(), desc, &dec).ok()) << method;
      ASSERT_EQ(dec.size(), input.size()) << method;
      EXPECT_EQ(std::memcmp(dec.data(), input.data(), input.size()), 0)
          << method << " threads=" << threads;
    }
  }
}

TEST(ChunkedTest, MixedFrameRandomAccessMatchesFullDecode) {
  RegisterAllCompressors();
  constexpr size_t kCount = 5000;
  const auto input = TwoRegimeData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  select::AutoCompressor comp(Objective::kStorageReduction, ChunkConfig(2));
  Buffer enc;
  ASSERT_TRUE(
      comp.Compress(ByteSpan(input.data(), input.size()), desc, &enc).ok());

  auto idx = ChunkedCompressor::ReadIndex(enc.span());
  ASSERT_TRUE(idx.ok());
  ASSERT_EQ(idx.value().version, ChunkedCompressor::kVersionMixed);
  ASSERT_EQ(idx.value().num_chunks(), 10u);
  ASSERT_EQ(idx.value().method_ids.size(), 10u);

  uint64_t raw_off = 0;
  for (size_t c = 0; c < idx.value().num_chunks(); ++c) {
    EXPECT_FALSE(idx.value().MethodOfChunk(c).empty()) << c;
    Buffer chunk;
    ASSERT_TRUE(comp.DecompressChunk(enc.span(), desc, c, &chunk).ok())
        << "chunk " << c;
    uint64_t want = idx.value().RawSizeOfChunk(c);
    ASSERT_EQ(chunk.size(), want) << "chunk " << c;
    EXPECT_EQ(std::memcmp(chunk.data(), input.data() + raw_off, want), 0)
        << "chunk " << c << " differs from the original";
    raw_off += want;
  }
  EXPECT_EQ(raw_off, input.size());

  Buffer oob;
  EXPECT_FALSE(
      comp.DecompressChunk(enc.span(), desc, idx.value().num_chunks(), &oob)
          .ok());
}

TEST(ChunkedTest, ParAdapterDecodesMixedFramesViaRecordedMethods) {
  // A v2 frame names its own methods, so any chunked decoder can decode
  // it regardless of the method it was constructed with — the recorded
  // per-chunk method wins over the fallback.
  RegisterAllCompressors();
  constexpr size_t kCount = 3000;
  const auto input = TwoRegimeData(kCount);
  const DataDesc desc = ChunkDesc(kCount);
  Buffer enc;
  ASSERT_TRUE(CompressorRegistry::Global()
                  .Create("auto-ratio", ChunkConfig(2))
                  .TakeValue()
                  ->Compress(ByteSpan(input.data(), input.size()), desc,
                             &enc)
                  .ok());
  auto par = CompressorRegistry::Global()
                 .Create("par-gorilla", ChunkConfig(2))
                 .TakeValue();
  Buffer dec;
  ASSERT_TRUE(par->Decompress(enc.span(), desc, &dec).ok());
  ASSERT_EQ(dec.size(), input.size());
  EXPECT_EQ(std::memcmp(dec.data(), input.data(), input.size()), 0);
}

// ---------------------------------------------------------------------------
// LSM engine: maintenance racing live ingest
// ---------------------------------------------------------------------------

namespace lsmrace {

std::string UniqueDir(const std::string& tag) {
  return "/tmp/fcbench_conc_" + std::to_string(::getpid()) + "_" + tag;
}

void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string p = fs::JoinPath(dir, n);
      if (!fs::RemoveFile(p).ok()) RemoveTree(p);  // a subdirectory
    }
  }
  ::rmdir(dir.c_str());
}

}  // namespace lsmrace

TEST(ConcurrencyTest, ScrubAndCompactRaceLiveAppendsWithoutLossOrReorder) {
  // One engine, three roles at once: a writer streaming batches (small
  // memtable, so flushes happen continuously on the shared pool), a
  // scrubber re-verifying every published segment, and a compactor
  // merging small runs. The single-flight gates (flush_inflight_,
  // compact_inflight_, active_readers_) must serialize what needs
  // serializing without wedging anyone — and no interleaving may lose,
  // duplicate, or reorder an acknowledged row.
  using db::lsm::ColumnDef;
  using db::lsm::EngineOptions;
  using db::lsm::IngestEngine;

  const std::string dir = lsmrace::UniqueDir("scrub_compact_append");
  lsmrace::RemoveTree(dir);

  EngineOptions opt;
  opt.memtable_bytes = 2 << 10;
  opt.sync_on_commit = false;
  opt.background_flush = true;
  opt.compact_fanout = 0;  // compaction is driven by the racing thread
  opt.io_retry_backoff_ms = 0;
  std::vector<ColumnDef> schema(1);
  schema[0].name = "v";

  auto opened = IngestEngine::Open(dir, schema, opt);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& eng = *opened.value();

  constexpr size_t kBatches = 200;
  constexpr size_t kRows = 16;
  std::atomic<bool> done{false};
  std::atomic<int> scrub_failures{0}, compact_failures{0};
  std::atomic<uint64_t> quarantined{0};

  std::thread scrubber([&] {
    while (!done.load()) {
      auto rep = eng.Scrub();
      if (!rep.ok()) {
        ++scrub_failures;
      } else {
        quarantined += rep.value().quarantined_ids.size();
      }
    }
  });
  std::thread compactor([&] {
    while (!done.load()) {
      if (!eng.Compact().ok()) ++compact_failures;
    }
  });

  for (size_t b = 0; b < kBatches; ++b) {
    std::vector<double> rows(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      rows[r] = static_cast<double>(b * kRows + r);
    }
    ASSERT_TRUE(eng.AppendBatch(rows).ok()) << "batch " << b;
  }
  done = true;
  scrubber.join();
  compactor.join();
  ASSERT_TRUE(eng.WaitForFlush().ok());

  // Nothing was corrupt, so no scrub pass may have quarantined data,
  // and neither maintenance path may have failed.
  EXPECT_EQ(scrub_failures.load(), 0);
  EXPECT_EQ(compact_failures.load(), 0);
  EXPECT_EQ(quarantined.load(), 0u);

  // Every acknowledged row, exactly once, in append order.
  auto v = eng.ReadColumn("v");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v.value().size(), kBatches * kRows);
  for (size_t i = 0; i < v.value().size(); ++i) {
    ASSERT_EQ(v.value()[i], static_cast<double>(i)) << "row " << i;
  }

  ASSERT_TRUE(eng.Close().ok());
  lsmrace::RemoveTree(dir);
}

}  // namespace
}  // namespace fcbench
