// Concurrency tests: the registry and independent compressor instances
// must be safe to use from many threads at once (the in-situ pipeline of
// §1.1 compresses one stream per simulation rank). Run under TSan for the
// full guarantee; these tests make races observable as data corruption
// even without it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/compressor.h"
#include "util/rng.h"

namespace fcbench {
namespace {

std::vector<uint8_t> ThreadData(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(count * 8);
  double x = 10.0 * static_cast<double>(seed + 1);
  for (size_t i = 0; i < count; ++i) {
    x += rng.Normal();
    std::memcpy(&bytes[i * 8], &x, 8);
  }
  return bytes;
}

TEST(ConcurrencyTest, RegistryCreateFromManyThreads) {
  RegisterAllCompressors();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        for (const auto& name : CompressorRegistry::Global().Names()) {
          auto c = CompressorRegistry::Global().Create(name);
          if (!c.ok() || c.value() == nullptr) ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, IndependentInstancesRoundTripInParallel) {
  RegisterAllCompressors();
  // One thread per method; each compresses its own distinct stream many
  // times and verifies bit-exactness. Any shared mutable state between
  // instances shows up as a mismatch.
  std::vector<std::string> methods;
  for (const auto& name : CompressorRegistry::Global().Names()) {
    if (name != "dzip_nn" && name != "buff") methods.push_back(name);
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t m = 0; m < methods.size(); ++m) {
    threads.emplace_back([&, m] {
      CompressorConfig cfg;
      cfg.threads = 2;  // nested pools: thread-per-method x pool-per-call
      auto comp =
          CompressorRegistry::Global().Create(methods[m], cfg).TakeValue();
      DataDesc desc;
      desc.dtype = DType::kFloat64;
      desc.extent = {2048};
      for (int round = 0; round < 10; ++round) {
        auto input = ThreadData(m * 100 + round, 2048);
        Buffer enc, dec;
        if (!comp->Compress(ByteSpan(input.data(), input.size()), desc,
                            &enc)
                 .ok() ||
            !comp->Decompress(enc.span(), desc, &dec).ok() ||
            dec.size() != input.size() ||
            std::memcmp(dec.data(), input.data(), input.size()) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, SharedInstanceSequentialReuse) {
  // The API contract is one call at a time per instance, but an instance
  // must be reusable across many (desc, data) pairs without state leaking
  // between calls.
  RegisterAllCompressors();
  for (const auto& name : CompressorRegistry::Global().Names()) {
    if (name == "dzip_nn") continue;
    auto comp = CompressorRegistry::Global().Create(name).TakeValue();
    for (size_t count : {7u, 1024u, 333u, 4096u}) {
      DataDesc desc;
      desc.dtype = DType::kFloat64;
      desc.extent = {count};
      desc.precision_digits = 10;
      auto input = ThreadData(count, count);
      Buffer enc, dec;
      ASSERT_TRUE(
          comp->Compress(ByteSpan(input.data(), input.size()), desc, &enc)
              .ok())
          << name << " count=" << count;
      ASSERT_TRUE(comp->Decompress(enc.span(), desc, &dec).ok())
          << name << " count=" << count;
      if (name == "buff") continue;  // quantizing exception
      ASSERT_EQ(dec.size(), input.size()) << name;
      EXPECT_EQ(std::memcmp(dec.data(), input.data(), input.size()), 0)
          << name << " state leaked between calls (count=" << count << ")";
    }
  }
}

}  // namespace
}  // namespace fcbench
