// Tests for the crash-safe LSM ingest engine (src/db/lsm/): WAL framing
// and torn-tail recovery, the kill-at-any-byte crash-consistency sweeps
// (truncate/flip every byte of the WAL; every half-published segment
// state), recovery idempotence, background flush, and tiered compaction.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "db/column_store.h"
#include "db/lsm/lsm_engine.h"
#include "db/lsm/wal.h"
#include "util/fs.h"

namespace fcbench::db::lsm {
namespace {

std::string UniqueDir(const std::string& tag) {
  return "/tmp/fcbench_lsm_" + std::to_string(::getpid()) + "_" + tag;
}

void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      fs::RemoveFile(fs::JoinPath(dir, n));
    }
  }
  ::rmdir(dir.c_str());
}

void CopyTree(const std::string& src, const std::string& dst) {
  ASSERT_TRUE(fs::CreateDir(dst).ok());
  auto names = fs::ListDir(src);
  ASSERT_TRUE(names.ok());
  for (const auto& n : names.value()) {
    auto bytes = fs::ReadFile(fs::JoinPath(src, n));
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(fs::WriteFileAtomic(fs::JoinPath(dst, n),
                                    bytes.value().span(),
                                    /*durable=*/false)
                    .ok());
  }
}

// ---------------------------------------------------------------------------
// Wal / WalReader
// ---------------------------------------------------------------------------

/// Deterministic per-record payload with distinct sizes.
Buffer Payload(size_t i) {
  Buffer b;
  for (size_t k = 0; k < 5 + 7 * i; ++k) {
    b.PushBack(static_cast<uint8_t>(i * 31 + k));
  }
  return b;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    ASSERT_TRUE(fs::CreateDir(dir_).ok());
  }
  void TearDown() override { RemoveTree(dir_); }

  std::string dir_;
};

TEST_F(WalTest, AppendCommitReplayRoundTrip) {
  Wal::Options opt;
  auto wal = Wal::Open(dir_, 0, opt);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        wal.value()->Append(Wal::kTypeRows, Payload(i).span()).ok());
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  ASSERT_TRUE(wal.value()->Close().ok());

  auto replay = WalReader::ReplayDir(dir_, 0);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay.value().truncated);
  ASSERT_EQ(replay.value().records.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(replay.value().records[i].type, Wal::kTypeRows);
    EXPECT_EQ(replay.value().records[i].payload.ToVector(),
              Payload(i).ToVector());
  }
}

TEST_F(WalTest, GroupCommitWritesWholeBatchAtomically) {
  Wal::Options opt;
  auto wal = Wal::Open(dir_, 0, opt);
  ASSERT_TRUE(wal.ok());
  // Three appends, one commit: either all three survive or none.
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        wal.value()->Append(Wal::kTypeRows, Payload(i).span()).ok());
  }
  ASSERT_TRUE(wal.value()->Commit().ok());
  ASSERT_TRUE(wal.value()->Close().ok());
  auto replay = WalReader::ReplayDir(dir_, 0);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 3u);
}

TEST_F(WalTest, RotationSplitsSegmentsAndReplaysAcross) {
  Wal::Options opt;
  opt.segment_bytes = 64;  // rotate after nearly every record
  auto wal = Wal::Open(dir_, 0, opt);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        wal.value()->Append(Wal::kTypeRows, Payload(i).span()).ok());
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  EXPECT_GT(wal.value()->seq(), 2u);
  ASSERT_TRUE(wal.value()->Close().ok());

  size_t wal_files = 0;
  auto names = fs::ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const auto& n : names.value()) {
    uint64_t seq = 0;
    if (Wal::ParseSegmentFileName(n, &seq)) ++wal_files;
  }
  EXPECT_GT(wal_files, 2u);

  auto replay = WalReader::ReplayDir(dir_, 0);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(replay.value().records[i].payload.ToVector(),
              Payload(i).ToVector());
  }
}

TEST_F(WalTest, MinSeqSkipsObsoleteSegments) {
  Wal::Options opt;
  opt.segment_bytes = 1;  // every commit rotates
  auto wal = Wal::Open(dir_, 0, opt);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        wal.value()->Append(Wal::kTypeRows, Payload(i).span()).ok());
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  ASSERT_TRUE(wal.value()->Close().ok());
  auto replay = WalReader::ReplayDir(dir_, 2);
  ASSERT_TRUE(replay.ok());
  // Records 0 and 1 live in segments 0 and 1, below the floor.
  ASSERT_EQ(replay.value().records.size(), 2u);
  EXPECT_EQ(replay.value().records[0].payload.ToVector(),
            Payload(2).ToVector());
}

/// Builds a single-segment WAL with `n` records and returns the raw
/// segment bytes plus each record's end offset within the file.
void BuildWalFile(const std::string& dir, size_t n, Buffer* bytes,
                  std::vector<size_t>* record_ends) {
  Wal::Options opt;
  opt.segment_bytes = 1 << 20;
  auto wal = Wal::Open(dir, 0, opt);
  ASSERT_TRUE(wal.ok());
  // Segment header: u32 magic + varint version + varint seq(0) = 6 bytes.
  size_t off = 6;
  for (size_t i = 0; i < n; ++i) {
    Buffer p = Payload(i);
    ASSERT_TRUE(wal.value()->Append(Wal::kTypeRows, p.span()).ok());
    ASSERT_TRUE(wal.value()->Commit().ok());
    off += 8 + 4 + 1 + p.size();  // hash, len, type, payload
    record_ends->push_back(off);
  }
  ASSERT_TRUE(wal.value()->Close().ok());
  auto raw = fs::ReadFile(fs::JoinPath(dir, Wal::SegmentFileName(0)));
  ASSERT_TRUE(raw.ok());
  *bytes = std::move(raw).TakeValue();
  ASSERT_EQ(bytes->size(), record_ends->back());
}

TEST_F(WalTest, KillAtAnyByteTruncationSweep) {
  Buffer file;
  std::vector<size_t> ends;
  BuildWalFile(dir_, 6, &file, &ends);

  const std::string probe = dir_ + "_probe";
  for (size_t cut = 0; cut < file.size(); ++cut) {
    ASSERT_TRUE(fs::CreateDir(probe).ok());
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, Wal::SegmentFileName(0)),
                    ByteSpan(file.data(), cut), /*durable=*/false)
                    .ok());
    auto replay = WalReader::ReplayDir(probe, 0);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    // Exactly the records that fully fit below the cut survive.
    size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    ASSERT_EQ(replay.value().records.size(), expect) << "cut=" << cut;
    for (size_t i = 0; i < expect; ++i) {
      ASSERT_EQ(replay.value().records[i].payload.ToVector(),
                Payload(i).ToVector())
          << "cut=" << cut;
    }
    // The truncation flag fires exactly when the cut left partial bytes:
    // a cut at a record boundary (or right after the segment header) is
    // indistinguishable from a log that committed fewer records.
    const bool clean_boundary =
        cut == 6 || (expect > 0 && ends[expect - 1] == cut);
    EXPECT_EQ(replay.value().truncated, !clean_boundary) << "cut=" << cut;
    RemoveTree(probe);
  }
}

TEST_F(WalTest, KillAtAnyByteBitFlipSweep) {
  Buffer file;
  std::vector<size_t> ends;
  BuildWalFile(dir_, 6, &file, &ends);

  const std::string probe = dir_ + "_probe";
  for (size_t flip = 0; flip < file.size(); ++flip) {
    Buffer corrupt = Buffer::FromSpan(file.span());
    corrupt.data()[flip] ^= 0x40;
    ASSERT_TRUE(fs::CreateDir(probe).ok());
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, Wal::SegmentFileName(0)),
                    corrupt.span(), /*durable=*/false)
                    .ok());
    auto replay = WalReader::ReplayDir(probe, 0);
    ASSERT_TRUE(replay.ok()) << "flip=" << flip;
    // Prefix law: whatever is recovered must be an intact prefix of the
    // appended record sequence (a flip can only truncate, never corrupt
    // a surviving record or resurrect a later one without the earlier).
    const auto& recs = replay.value().records;
    ASSERT_LE(recs.size(), ends.size()) << "flip=" << flip;
    for (size_t i = 0; i < recs.size(); ++i) {
      ASSERT_EQ(recs[i].payload.ToVector(), Payload(i).ToVector())
          << "flip=" << flip;
    }
    // A flip past the last record's end cannot exist (file ends there);
    // a flip inside record i's bytes truncates to at most i records.
    size_t owner = 0;
    while (owner < ends.size() && ends[owner] <= flip) ++owner;
    if (flip >= 6) {  // flips in the segment header drop everything
      ASSERT_LE(recs.size(), owner) << "flip=" << flip;
    } else {
      ASSERT_EQ(recs.size(), 0u) << "flip=" << flip;
    }
    RemoveTree(probe);
  }
}

// ---------------------------------------------------------------------------
// IngestEngine
// ---------------------------------------------------------------------------

class LsmEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    RemoveTree(dir_);
  }
  void TearDown() override {
    RemoveTree(dir_);
    RemoveTree(dir_ + "_probe");
  }

  static std::vector<ColumnDef> Schema() {
    return {
        {.name = "ts", .dtype = DType::kFloat64},
        {.name = "value", .dtype = DType::kFloat64},
        {.name = "flag", .dtype = DType::kFloat32},
    };
  }

  /// Row i of the deterministic test table.
  static std::vector<double> Row(uint64_t i) {
    return {1.0e9 + static_cast<double>(i) * 10.0,
            std::sin(static_cast<double>(i) * 0.01) * 100.0,
            static_cast<double>(i % 7)};
  }

  static std::vector<double> ExpectedColumn(size_t col, uint64_t nrows) {
    std::vector<double> v(nrows);
    for (uint64_t i = 0; i < nrows; ++i) {
      double x = Row(i)[col];
      if (col == 2) x = static_cast<double>(static_cast<float>(x));
      v[i] = x;
    }
    return v;
  }

  static void ExpectColumnsEqualPrefix(IngestEngine& eng, uint64_t nrows) {
    const char* names[] = {"ts", "value", "flag"};
    for (size_t c = 0; c < 3; ++c) {
      auto r = eng.ReadColumn(names[c]);
      ASSERT_TRUE(r.ok()) << names[c] << ": " << r.status().ToString();
      EXPECT_EQ(r.value(), ExpectedColumn(c, nrows)) << names[c];
    }
  }

  static Status AppendRows(IngestEngine& eng, uint64_t begin, uint64_t end,
                           size_t batch_rows) {
    std::vector<double> batch;
    for (uint64_t i = begin; i < end; ++i) {
      auto row = Row(i);
      batch.insert(batch.end(), row.begin(), row.end());
      if (batch.size() / 3 == batch_rows || i + 1 == end) {
        FCB_RETURN_IF_ERROR(eng.AppendBatch(batch));
        batch.clear();
      }
    }
    return Status::OK();
  }

  static EngineOptions FastOptions() {
    EngineOptions o;
    o.background_flush = false;
    o.compact_fanout = 0;           // compaction only when asked
    o.flush_compressor = "gorilla";  // cheap, deterministic for tests
    o.compact_compressor = "chimp128";
    return o;
  }

  std::string dir_;
};

TEST_F(LsmEngineTest, AppendFlushReadBack) {
  auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status().ToString();
  ASSERT_TRUE(AppendRows(*eng.value(), 0, 3000, 7).ok());
  EXPECT_EQ(eng.value()->rows(), 3000u);
  ASSERT_TRUE(eng.value()->Flush().ok());
  ASSERT_EQ(eng.value()->segments().size(), 1u);
  EXPECT_EQ(eng.value()->segments()[0].rows, 3000u);
  ExpectColumnsEqualPrefix(*eng.value(), 3000);
}

TEST_F(LsmEngineTest, MemtableRecoversFromWalAfterCrash) {
  {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 0, 100, 9).ok());
    // Destroyed without Flush: a crash as far as the memtable is
    // concerned. The WAL alone must carry the rows.
  }
  auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status().ToString();
  EXPECT_EQ(eng.value()->rows(), 100u);
  EXPECT_TRUE(eng.value()->segments().empty());
  ExpectColumnsEqualPrefix(*eng.value(), 100);

  // The recovered engine keeps ingesting and flushing normally.
  ASSERT_TRUE(AppendRows(*eng.value(), 100, 150, 9).ok());
  ASSERT_TRUE(eng.value()->Flush().ok());
  ExpectColumnsEqualPrefix(*eng.value(), 150);
}

TEST_F(LsmEngineTest, FlushSurvivesCrashAndDoesNotReplayFlushedRows) {
  {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 0, 64, 8).ok());
    ASSERT_TRUE(eng.value()->Flush().ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 64, 100, 8).ok());
  }
  auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
  ASSERT_TRUE(eng.ok());
  EXPECT_EQ(eng.value()->rows(), 100u);  // 64 in the segment + 36 replayed
  ASSERT_EQ(eng.value()->segments().size(), 1u);
  ExpectColumnsEqualPrefix(*eng.value(), 100);
}

TEST_F(LsmEngineTest, KillAtAnyByteOfWalRecoversAPrefix) {
  constexpr uint64_t kBatch = 4, kBatches = 5;
  {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(
        AppendRows(*eng.value(), 0, kBatch * kBatches, kBatch).ok());
  }
  const std::string wal_path =
      fs::JoinPath(dir_, Wal::SegmentFileName(0));
  auto file = fs::ReadFile(wal_path);
  ASSERT_TRUE(file.ok());
  const std::string probe = dir_ + "_probe";

  auto check_prefix_consistent = [&](size_t detail) {
    auto eng = IngestEngine::Open(probe, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok()) << "at byte " << detail << ": "
                          << eng.status().ToString();
    const uint64_t rows = eng.value()->rows();
    // Batches are atomic: only whole multiples of the batch size can
    // survive, and the surviving rows must be the exact prefix.
    ASSERT_EQ(rows % kBatch, 0u) << "at byte " << detail;
    ASSERT_LE(rows, kBatch * kBatches) << "at byte " << detail;
    ExpectColumnsEqualPrefix(*eng.value(), rows);
  };

  // Truncate the WAL at every byte offset (crash tore the tail)...
  for (size_t cut = 0; cut <= file.value().size(); ++cut) {
    RemoveTree(probe);
    CopyTree(dir_, probe);
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, Wal::SegmentFileName(0)),
                    ByteSpan(file.value().data(), cut), /*durable=*/false)
                    .ok());
    check_prefix_consistent(cut);
  }
  // ... and flip every byte (bit rot / torn sector).
  for (size_t flip = 0; flip < file.value().size(); ++flip) {
    RemoveTree(probe);
    CopyTree(dir_, probe);
    Buffer corrupt = Buffer::FromSpan(file.value().span());
    corrupt.data()[flip] ^= 0x10;
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, Wal::SegmentFileName(0)),
                    corrupt.span(), /*durable=*/false)
                    .ok());
    check_prefix_consistent(flip);
  }
}

TEST_F(LsmEngineTest, HalfPublishedSegmentStatesRecoverCleanly) {
  // Base state: one published segment (64 rows) + 36 rows only in WAL.
  {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 0, 64, 8).ok());
    ASSERT_TRUE(eng.value()->Flush().ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 64, 100, 8).ok());
  }
  const std::string probe = dir_ + "_probe";

  auto reopen_and_verify = [&](const std::string& label) {
    auto eng = IngestEngine::Open(probe, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok()) << label << ": " << eng.status().ToString();
    EXPECT_EQ(eng.value()->rows(), 100u) << label;
    ExpectColumnsEqualPrefix(*eng.value(), 100);
    // The sweep must have removed every temp and every unreferenced
    // segment file.
    auto names = fs::ListDir(probe);
    ASSERT_TRUE(names.ok());
    for (const auto& n : names.value()) {
      EXPECT_FALSE(fs::IsTempPath(n)) << label << " left " << n;
      EXPECT_EQ(n.find("seg-000001"), std::string::npos)
          << label << " left orphan " << n;
    }
  };

  // State A: crashed flush wrote the next segment's column files (and
  // even its ColumnStore manifest) but died before the engine MANIFEST.
  RemoveTree(probe);
  CopyTree(dir_, probe);
  {
    auto col = fs::ReadFile(fs::JoinPath(dir_, "seg-000000.0.col"));
    ASSERT_TRUE(col.ok());
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, "seg-000001.0.col"),
                    col.value().span(), false)
                    .ok());
    auto man = fs::ReadFile(fs::JoinPath(dir_, "seg-000000.manifest"));
    ASSERT_TRUE(man.ok());
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, "seg-000001.manifest"),
                    man.value().span(), false)
                    .ok());
  }
  reopen_and_verify("orphan segment");

  // State B: crashed mid-column — a torn half of one column file, no
  // segment manifest.
  RemoveTree(probe);
  CopyTree(dir_, probe);
  {
    auto col = fs::ReadFile(fs::JoinPath(dir_, "seg-000000.0.col"));
    ASSERT_TRUE(col.ok());
    ASSERT_TRUE(fs::WriteFileAtomic(
                    fs::JoinPath(probe, "seg-000001.0.col"),
                    ByteSpan(col.value().data(), col.value().size() / 2),
                    false)
                    .ok());
  }
  reopen_and_verify("torn orphan column");

  // State C: stale atomic-write temps from a crash inside
  // WriteFileAtomic itself.
  RemoveTree(probe);
  CopyTree(dir_, probe);
  {
    const uint8_t junk[] = {1, 2, 3};
    for (const char* name :
         {"MANIFEST.tmp", "seg-000001.0.col.tmp", "seg-000000.manifest.tmp"}) {
      ASSERT_TRUE(fs::WriteFileAtomic(fs::JoinPath(probe, name),
                                      ByteSpan(junk, 3), false)
                      .ok());
      // WriteFileAtomic writes name.tmp then renames; the final file is
      // the stale temp we want.
    }
  }
  reopen_and_verify("stale temps");
}

TEST_F(LsmEngineTest, RecoveryIsIdempotent) {
  {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 0, 64, 8).ok());
    ASSERT_TRUE(eng.value()->Flush().ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 64, 90, 8).ok());
  }
  // Tear the WAL tail so recovery has real work to do.
  const std::string wal_path =
      fs::JoinPath(dir_, Wal::SegmentFileName(1));
  auto file = fs::ReadFile(wal_path);
  ASSERT_TRUE(file.ok());
  ASSERT_GT(file.value().size(), 10u);
  ASSERT_TRUE(fs::WriteFileAtomic(
                  wal_path,
                  ByteSpan(file.value().data(), file.value().size() - 7),
                  false)
                  .ok());

  auto fingerprint = [&]() {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    EXPECT_TRUE(eng.ok());
    std::vector<double> fp;
    fp.push_back(static_cast<double>(eng.value()->rows()));
    for (const auto& s : eng.value()->segments()) {
      fp.push_back(static_cast<double>(s.id));
      fp.push_back(static_cast<double>(s.rows));
      fp.push_back(static_cast<double>(s.level));
    }
    for (const char* c : {"ts", "value", "flag"}) {
      auto r = eng.value()->ReadColumn(c);
      EXPECT_TRUE(r.ok());
      fp.insert(fp.end(), r.value().begin(), r.value().end());
    }
    return fp;
  };

  auto first = fingerprint();
  auto second = fingerprint();  // recover twice => identical state
  EXPECT_EQ(first, second);
  auto third = fingerprint();
  EXPECT_EQ(first, third);
}

TEST_F(LsmEngineTest, BackgroundFlushOnWatermarkWithReadsDuringIngest) {
  EngineOptions opt;
  opt.background_flush = true;
  opt.memtable_bytes = 8 << 10;  // ~340 rows of 3 columns
  opt.compact_fanout = 0;
  opt.flush_compressor = "auto";  // exercise the online selector path
  auto eng = IngestEngine::Open(dir_, Schema(), opt);
  ASSERT_TRUE(eng.ok());
  for (uint64_t b = 0; b < 40; ++b) {
    ASSERT_TRUE(AppendRows(*eng.value(), b * 50, (b + 1) * 50, 50).ok());
    if (b % 8 == 0) {
      // Reads interleave with background flushes and stay consistent.
      auto r = eng.value()->ReadColumn("ts");
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().size(), (b + 1) * 50);
    }
  }
  ASSERT_TRUE(eng.value()->WaitForFlush().ok());
  ASSERT_TRUE(eng.value()->Flush().ok());
  EXPECT_GE(eng.value()->segments().size(), 2u);
  EXPECT_EQ(eng.value()->rows(), 2000u);
  ExpectColumnsEqualPrefix(*eng.value(), 2000);

  // Flushed segments record a concrete method, never "auto".
  auto methods = ColumnStore::ListMethods(
      fs::JoinPath(dir_, "seg-000000"));
  ASSERT_TRUE(methods.ok());
  for (const auto& m : methods.value()) {
    EXPECT_NE(m.substr(0, 4), "auto") << m;
  }
}

TEST_F(LsmEngineTest, CompactionMergesSmallSegmentsAndDropsOldFiles) {
  auto opt = FastOptions();
  auto eng = IngestEngine::Open(dir_, Schema(), opt);
  ASSERT_TRUE(eng.ok());
  for (uint64_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(AppendRows(*eng.value(), s * 100, (s + 1) * 100, 25).ok());
    ASSERT_TRUE(eng.value()->Flush().ok());
  }
  ASSERT_EQ(eng.value()->segments().size(), 4u);

  ASSERT_TRUE(eng.value()->Compact().ok());
  auto segs = eng.value()->segments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].rows, 400u);
  EXPECT_EQ(segs[0].level, 1u);
  ExpectColumnsEqualPrefix(*eng.value(), 400);

  // Old segment files are gone; the merged segment used the compaction
  // compressor.
  auto names = fs::ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const auto& n : names.value()) {
    for (const char* old :
         {"seg-000000", "seg-000001", "seg-000002", "seg-000003"}) {
      EXPECT_EQ(n.find(old), std::string::npos) << n;
    }
  }
  auto methods = ColumnStore::ListMethods(
      fs::JoinPath(dir_, "seg-000004"));
  ASSERT_TRUE(methods.ok());
  EXPECT_EQ(methods.value()[0], "chimp128");

  // Compaction survives a crash too: reopen reads the same table.
  eng = IngestEngine::Open(dir_, Schema(), opt);
  ASSERT_TRUE(eng.ok());
  ExpectColumnsEqualPrefix(*eng.value(), 400);
}

TEST_F(LsmEngineTest, AutoCompactionKeepsSegmentCountBounded) {
  EngineOptions opt = FastOptions();
  opt.background_flush = false;
  opt.compact_fanout = 2;
  opt.memtable_bytes = 4 << 10;
  auto eng = IngestEngine::Open(dir_, Schema(), opt);
  ASSERT_TRUE(eng.ok());
  ASSERT_TRUE(AppendRows(*eng.value(), 0, 4000, 100).ok());
  ASSERT_TRUE(eng.value()->Flush().ok());
  ASSERT_TRUE(eng.value()->WaitForFlush().ok());
  // ~20 watermark flushes happened; tiering must have merged runs.
  EXPECT_LT(eng.value()->segments().size(), 8u);
  ExpectColumnsEqualPrefix(*eng.value(), 4000);
}

TEST_F(LsmEngineTest, ManifestBitFlipsAreDetectedNotMisread) {
  {
    auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 0, 64, 8).ok());
    ASSERT_TRUE(eng.value()->Flush().ok());
  }
  auto manifest = fs::ReadFile(fs::JoinPath(dir_, "MANIFEST"));
  ASSERT_TRUE(manifest.ok());
  const std::string probe = dir_ + "_probe";
  for (size_t flip = 0; flip < manifest.value().size(); ++flip) {
    RemoveTree(probe);
    CopyTree(dir_, probe);
    Buffer corrupt = Buffer::FromSpan(manifest.value().span());
    corrupt.data()[flip] ^= 0x04;
    ASSERT_TRUE(fs::WriteFileAtomic(fs::JoinPath(probe, "MANIFEST"),
                                    corrupt.span(), false)
                    .ok());
    auto eng = IngestEngine::Open(probe, Schema(), FastOptions());
    // The engine manifest is checksummed: any flip is detected and
    // reported — never silently misread (schema damage may also surface
    // as a mismatch error; both are clean rejections).
    EXPECT_FALSE(eng.ok()) << "flip=" << flip;
  }
}

TEST_F(LsmEngineTest, RejectsBadUsage) {
  auto eng = IngestEngine::Open(dir_, Schema(), FastOptions());
  ASSERT_TRUE(eng.ok());
  EXPECT_FALSE(eng.value()->Append({1.0, 2.0}).ok());  // ragged row
  EXPECT_FALSE(eng.value()->ReadColumn("nope").ok());
  ASSERT_TRUE(eng.value()->Append(Row(0)).ok());

  // Reopening with a different schema is refused.
  std::vector<ColumnDef> other = Schema();
  other[1].dtype = DType::kFloat32;
  auto bad = IngestEngine::Open(dir_, other, FastOptions());
  EXPECT_FALSE(bad.ok());

  // Opening with an empty schema adopts the stored one.
  eng = IngestEngine::Open(dir_, {}, FastOptions());
  ASSERT_TRUE(eng.ok());
  EXPECT_EQ(eng.value()->schema().size(), 3u);
  EXPECT_EQ(eng.value()->rows(), 1u);
}

TEST_F(LsmEngineTest, NoSyncModeStillRecoversCleanShutdown) {
  EngineOptions opt = FastOptions();
  opt.sync_on_commit = false;  // bench mode: page cache only
  {
    auto eng = IngestEngine::Open(dir_, Schema(), opt);
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(AppendRows(*eng.value(), 0, 200, 20).ok());
  }
  auto eng = IngestEngine::Open(dir_, Schema(), opt);
  ASSERT_TRUE(eng.ok());
  EXPECT_EQ(eng.value()->rows(), 200u);
  ExpectColumnsEqualPrefix(*eng.value(), 200);
}

}  // namespace
}  // namespace fcbench::db::lsm
