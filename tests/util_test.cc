// Unit tests for the util substrate: Status/Result, bit I/O, varints,
// float bit mappings, RNG determinism, entropy, thread pool, mem tracker.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/bitio.h"
#include "util/buffer.h"
#include "util/fs.h"
#include "util/entropy.h"
#include "util/float_bits.h"
#include "util/mem_tracker.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fcbench {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad magic");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  auto good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);

  auto bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status UseAssignOrReturn(int v, int* out) {
  FCB_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UseAssignOrReturn(-7, &out).ok());
}

TEST(BufferTest, AppendAndResize) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  b.PushBack(1);
  b.PushBack(2);
  uint8_t more[3] = {3, 4, 5};
  b.Append(more, 3);
  ASSERT_EQ(b.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(b.data()[i], i + 1);
  b.Resize(2);
  EXPECT_EQ(b.size(), 2u);
  b.Resize(100);
  EXPECT_EQ(b.data()[0], 1);  // preserved across growth
  EXPECT_EQ(b.data()[1], 2);
}

TEST(BufferTest, MoveTransfersOwnership) {
  Buffer a;
  a.Append("hello", 5);
  Buffer b = std::move(a);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(BitIoTest, RoundTripBits) {
  Buffer buf;
  BitWriter bw(&buf);
  bw.WriteBits(0b101, 3);
  bw.WriteBits(0xdeadbeef, 32);
  bw.WriteBit(1);
  bw.WriteBits(0, 13);
  bw.WriteBits(0x1ffff, 17);
  bw.Flush();

  BitReader br(buf.span());
  EXPECT_EQ(br.ReadBits(3), 0b101u);
  EXPECT_EQ(br.ReadBits(32), 0xdeadbeefu);
  EXPECT_EQ(br.ReadBit(), 1u);
  EXPECT_EQ(br.ReadBits(13), 0u);
  EXPECT_EQ(br.ReadBits(17), 0x1ffffu);
  EXPECT_FALSE(br.overrun());
}

TEST(BitIoTest, ReaderDetectsOverrun) {
  Buffer buf;
  BitWriter bw(&buf);
  bw.WriteBits(0xff, 8);
  bw.Flush();
  BitReader br(buf.span());
  br.ReadBits(8);
  EXPECT_FALSE(br.overrun());
  br.ReadBit();
  EXPECT_TRUE(br.overrun());
}

TEST(BitIoTest, SixtyFourBitValues) {
  Buffer buf;
  BitWriter bw(&buf);
  const uint64_t v = 0x0123456789abcdefULL;
  bw.WriteBits(v, 64);
  bw.Flush();
  BitReader br(buf.span());
  EXPECT_EQ(br.ReadBits(64), v);
}

// ---------------------------------------------------------------------------
// Word-at-a-time bit I/O edge cases. The writer/reader keep a 64-bit
// accumulator, so every width that straddles an internal boundary (8, 32,
// 64) and the shift-by-64 UB traps get explicit coverage.
// ---------------------------------------------------------------------------

TEST(BitIoTest, AllBoundaryWidthsRoundTrip) {
  const int widths[] = {0, 1, 7, 8, 9, 31, 32, 33, 63, 64};
  // Patterns with high bits set so masking bugs (junk above nbits) show up.
  const uint64_t patterns[] = {0, ~0ull, 0xa5a5a5a5a5a5a5a5ull,
                               0x8000000000000001ull, 0x0123456789abcdefull};
  for (uint64_t p : patterns) {
    Buffer buf;
    BitWriter bw(&buf);
    size_t total = 0;
    for (int w : widths) {
      bw.WriteBits(p, w);
      total += w;
    }
    EXPECT_EQ(bw.bit_count(), total);
    bw.Flush();
    ASSERT_EQ(buf.size(), (total + 7) / 8);

    BitReader br(buf.span());
    for (int w : widths) {
      uint64_t mask = (w == 64) ? ~0ull : ((uint64_t(1) << w) - 1);
      EXPECT_EQ(br.ReadBits(w), p & mask) << "width " << w;
    }
    EXPECT_FALSE(br.overrun());
    EXPECT_EQ(br.bits_consumed(), total);
  }
}

TEST(BitIoTest, ZeroWidthIsANoOp) {
  Buffer buf;
  BitWriter bw(&buf);
  bw.WriteBits(0xff, 0);
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.Flush();
  EXPECT_EQ(buf.size(), 0u);
  BitReader br(buf.span());
  EXPECT_EQ(br.ReadBits(0), 0u);
  EXPECT_FALSE(br.overrun());
  EXPECT_EQ(br.bits_consumed(), 0u);
}

TEST(BitIoTest, BitCountScopedToWriterNotBuffer) {
  // A writer over a non-empty buffer (multi-part encodings) must count only
  // its own bits, not pre-existing bytes.
  Buffer buf;
  buf.Append("header", 6);
  BitWriter bw(&buf);
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.WriteBits(0x3, 2);
  EXPECT_EQ(bw.bit_count(), 2u);
  bw.WriteBits(0, 64);
  EXPECT_EQ(bw.bit_count(), 66u);
  bw.Flush();
  EXPECT_EQ(bw.bit_count(), 66u);  // flush padding is not counted
  EXPECT_EQ(buf.size(), 6u + 9u);
}

TEST(BitIoTest, OverrunMidRefillDeliversRealBitsThenZeros) {
  // 2 bytes of input; a 24-bit read crosses the end mid-refill. The real
  // bits must land in the top positions with zero fill below, and the
  // overrun flag must be raised by that same read, not later.
  Buffer buf;
  BitWriter bw(&buf);
  bw.WriteBits(0xabcd, 16);
  bw.Flush();
  BitReader br(buf.span());
  EXPECT_EQ(br.ReadBits(24), 0xabcd00u);
  EXPECT_TRUE(br.overrun());
  EXPECT_EQ(br.bits_consumed(), 16u);  // fabricated bits are not counted
  // Sticky across every subsequent path.
  EXPECT_EQ(br.ReadBits(64), 0u);
  EXPECT_EQ(br.ReadBit(), 0u);
  EXPECT_EQ(br.ReadUnary(4), 0);
  EXPECT_TRUE(br.overrun());
}

TEST(BitIoTest, WideReadOverrunAcrossWordBoundary) {
  // 7 bytes: a 64-bit read must take all 56 real bits then fabricate 8
  // zeros, flagging the overrun within the same call.
  Buffer buf;
  for (int i = 0; i < 7; ++i) buf.PushBack(static_cast<uint8_t>(0x11 * (i + 1)));
  BitReader br(buf.span());
  uint64_t v = br.ReadBits(64);
  EXPECT_EQ(v, 0x1122334455667700ull);
  EXPECT_TRUE(br.overrun());
  EXPECT_EQ(br.bits_consumed(), 56u);
}

TEST(BitIoTest, BitsConsumedAcrossRefillBoundaries) {
  // 24 bytes so the reader refills its 64-bit window three times.
  Buffer buf;
  BitWriter bw(&buf);
  for (int i = 0; i < 24; ++i) bw.WriteBits(static_cast<uint64_t>(i), 8);
  bw.Flush();
  BitReader br(buf.span());
  size_t consumed = 0;
  const int steps[] = {3, 5, 56, 17, 33, 1, 7, 40, 30};
  for (int s : steps) {
    br.ReadBits(s);
    consumed += s;
    EXPECT_EQ(br.bits_consumed(), consumed) << "after step " << s;
  }
  EXPECT_FALSE(br.overrun());
}

TEST(BitIoTest, UnaryRoundTrip) {
  Buffer buf;
  BitWriter bw(&buf);
  const uint32_t runs[] = {0, 1, 3, 31, 32, 63, 100};
  for (uint32_t r : runs) bw.WriteUnary(r);
  bw.Flush();
  BitReader br(buf.span());
  for (uint32_t r : runs) {
    EXPECT_EQ(br.ReadUnary(1000), static_cast<int>(r));
  }
  EXPECT_FALSE(br.overrun());
}

TEST(BitIoTest, UnaryCapDoesNotConsumeTerminator) {
  // 1111 0... — capped at 4 ones, the following bit is payload, not a
  // terminator (the Gorilla timestamp escape-code shape).
  Buffer buf;
  BitWriter bw(&buf);
  bw.WriteBits(0b11110101, 8);
  bw.Flush();
  BitReader br(buf.span());
  EXPECT_EQ(br.ReadUnary(4), 4);
  EXPECT_EQ(br.bits_consumed(), 4u);
  EXPECT_EQ(br.ReadBits(4), 0b0101u);
}

TEST(BitIoTest, UnaryTruncationFlagsOverrun) {
  Buffer buf;
  BitWriter bw(&buf);
  bw.WriteBits(0xff, 8);  // all ones, no terminator in stream
  bw.Flush();
  BitReader br(buf.span());
  EXPECT_EQ(br.ReadUnary(64), 8);
  EXPECT_TRUE(br.overrun());
}

TEST(BitIoTest, ReadBitsUncheckedMatchesChecked) {
  Buffer buf;
  BitWriter bw(&buf);
  Rng rng(0x600D);
  std::vector<std::pair<uint64_t, int>> fields;
  for (int i = 0; i < 500; ++i) {
    int w = 1 + static_cast<int>(rng.UniformInt(56));
    uint64_t v = rng.Next() & ((w == 64) ? ~0ull : ((uint64_t(1) << w) - 1));
    fields.push_back({v, w});
    bw.WriteBits(v, w);
  }
  bw.Flush();
  BitReader br(buf.span());
  for (const auto& [v, w] : fields) {
    ASSERT_EQ(br.ReadBitsUnchecked(w), v);
  }
  EXPECT_FALSE(br.overrun());
}

// Trivial one-bit-at-a-time reference implementation (the seed algorithm)
// for differential testing of the word-at-a-time engine.
struct RefBitWriter {
  Buffer* out;
  uint8_t acc = 0;
  int nacc = 0;
  void WriteBits(uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i) WriteBit((v >> i) & 1u);
  }
  void WriteBit(uint32_t bit) {
    acc = static_cast<uint8_t>((acc << 1) | (bit & 1u));
    if (++nacc == 8) {
      out->PushBack(acc);
      acc = 0;
      nacc = 0;
    }
  }
  void Flush() {
    if (nacc > 0) {
      out->PushBack(static_cast<uint8_t>(acc << (8 - nacc)));
      acc = 0;
      nacc = 0;
    }
  }
};

struct RefBitReader {
  ByteSpan in;
  size_t byte = 0;
  int nbit = 0;
  bool overrun = false;
  uint32_t ReadBit() {
    if (byte >= in.size()) {
      overrun = true;
      return 0;
    }
    uint32_t bit = (in[byte] >> (7 - nbit)) & 1u;
    if (++nbit == 8) {
      nbit = 0;
      ++byte;
    }
    return bit;
  }
  uint64_t ReadBits(int n) {
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) v = (v << 1) | ReadBit();
    return v;
  }
};

TEST(BitIoTest, DifferentialAgainstReferenceImplementation) {
  Rng rng(0xD1FF);
  for (int round = 0; round < 20; ++round) {
    // Random field schedule, biased toward small widths like real coders.
    std::vector<std::pair<uint64_t, int>> fields;
    size_t total_bits = 0;
    for (int i = 0; i < 400; ++i) {
      int w = static_cast<int>(rng.UniformInt(65));  // 0..64 inclusive
      if (rng.UniformInt(3) == 0) w = static_cast<int>(rng.UniformInt(9));
      uint64_t v = rng.Next();
      fields.push_back({v, w});
      total_bits += w;
    }

    Buffer word_buf, ref_buf;
    BitWriter word(&word_buf);
    RefBitWriter ref{&ref_buf};
    for (const auto& [v, w] : fields) {
      word.WriteBits(v, w);
      ref.WriteBits(v, w);
    }
    word.Flush();
    ref.Flush();
    ASSERT_EQ(word_buf.size(), ref_buf.size());
    ASSERT_EQ(
        std::memcmp(word_buf.data(), ref_buf.data(), word_buf.size()), 0)
        << "writer streams diverged in round " << round;

    // Read the stream back with both readers, including a deliberate
    // overrun tail, and compare every value and the overrun flag.
    BitReader word_rd(word_buf.span());
    RefBitReader ref_rd{ref_buf.span()};
    for (const auto& [v, w] : fields) {
      (void)v;
      ASSERT_EQ(word_rd.ReadBits(w), ref_rd.ReadBits(w));
    }
    EXPECT_EQ(word_rd.bits_consumed(), total_bits);
    // Past-the-end behavior must match bit for bit as well.
    for (int i = 0; i < 3; ++i) {
      int w = 1 + static_cast<int>(rng.UniformInt(64));
      ASSERT_EQ(word_rd.ReadBits(w), ref_rd.ReadBits(w));
    }
    EXPECT_EQ(word_rd.overrun(), ref_rd.overrun);
  }
}

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  255,  300,  16383,      16384,
                                  1u << 20, (1ull << 35), ~0ull};
  Buffer buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf.span(), &off, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(VarintTest, TruncatedInputFails) {
  Buffer buf;
  PutVarint64(&buf, 1ull << 40);
  uint64_t got;
  size_t off = 0;
  ByteSpan cut = buf.span().subspan(0, buf.size() - 1);
  EXPECT_FALSE(GetVarint64(cut, &off, &got));
}

TEST(FixedIntTest, RoundTrip) {
  Buffer buf;
  PutFixed<uint32_t>(&buf, 0xaabbccdd);
  PutFixed<uint16_t>(&buf, 0x1234);
  size_t off = 0;
  uint32_t a;
  uint16_t b;
  ASSERT_TRUE(GetFixed(buf.span(), &off, &a));
  ASSERT_TRUE(GetFixed(buf.span(), &off, &b));
  EXPECT_EQ(a, 0xaabbccddu);
  EXPECT_EQ(b, 0x1234u);
  uint32_t c;
  EXPECT_FALSE(GetFixed(buf.span(), &off, &c));
}

// --- float bits ------------------------------------------------------------

template <typename F>
class FloatBitsTypedTest : public ::testing::Test {};

using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(FloatBitsTypedTest, FloatTypes);

TYPED_TEST(FloatBitsTypedTest, BitCastRoundTrip) {
  using F = TypeParam;
  for (F v : {F(0), F(1), F(-1), F(3.14159), F(-2.5e-10), F(1e30)}) {
    EXPECT_EQ(FromBits<F>(ToBits<F>(v)), v);
  }
}

TYPED_TEST(FloatBitsTypedTest, OrderedMappingPreservesOrder) {
  using F = TypeParam;
  std::vector<F> values = {F(-1e30), F(-3.5),  F(-1),   F(-1e-20), F(-0.0),
                           F(0),     F(1e-20), F(0.25), F(1),      F(7e12)};
  for (size_t i = 1; i < values.size(); ++i) {
    auto a = SignedToOrdered(ToBits<F>(values[i - 1]));
    auto b = SignedToOrdered(ToBits<F>(values[i]));
    EXPECT_LE(a, b) << values[i - 1] << " vs " << values[i];
  }
}

TYPED_TEST(FloatBitsTypedTest, OrderedMappingInverts) {
  using F = TypeParam;
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    auto bits = static_cast<FloatBitsT<F>>(rng.Next());
    EXPECT_EQ(OrderedToSigned(SignedToOrdered(bits)), bits);
  }
}

TEST(ZigZagTest, RoundTripAndSmallness) {
  for (int64_t v : {int64_t(0), int64_t(-1), int64_t(1), int64_t(-12345),
                    int64_t(1) << 40, -(int64_t(1) << 40)}) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(-77)), -77);
}

TEST(LeadingZerosTest, Definitions) {
  EXPECT_EQ(LeadingZeros64(0), 64);
  EXPECT_EQ(LeadingZeros64(1), 63);
  EXPECT_EQ(LeadingZeros64(~0ull), 0);
  EXPECT_EQ(LeadingZeros32(0), 32);
  EXPECT_EQ(TrailingZeros64(0), 64);
  EXPECT_EQ(TrailingZeros64(8), 3);
  EXPECT_EQ(TrailingZeros32(0), 32);
}

// --- rng ---------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// --- entropy ---------------------------------------------------------------

TEST(EntropyTest, ConstantDataIsZero) {
  std::vector<uint8_t> data(4096, 0x41);
  EXPECT_DOUBLE_EQ(ByteEntropyBits(ByteSpan(data.data(), data.size())), 0.0);
}

TEST(EntropyTest, UniformBytesNearEight) {
  std::vector<uint8_t> data(1 << 16);
  Rng rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  double h = ByteEntropyBits(ByteSpan(data.data(), data.size()));
  EXPECT_GT(h, 7.99);
  EXPECT_LE(h, 8.0);
}

TEST(EntropyTest, WordEntropyCountsDistinctWords) {
  // 4 distinct 32-bit words, equally frequent -> 2 bits.
  std::vector<uint32_t> words;
  for (int i = 0; i < 1000; ++i) {
    words.push_back(0x11111111u);
    words.push_back(0x22222222u);
    words.push_back(0x33333333u);
    words.push_back(0x44444444u);
  }
  double h = ShannonEntropyBits(AsBytes(words), 4);
  EXPECT_NEAR(h, 2.0, 1e-9);
}

TEST(EntropyTest, SampledPathIsDeterministic) {
  // Large 8-byte-word inputs take the sampled hash-histogram path;
  // the fixed-seed sampler must return the same estimate on every call.
  constexpr size_t kWords = (1 << 17) + 1111;  // past the exact limit
  std::vector<uint64_t> words(kWords);
  Rng rng(41);
  for (auto& w : words) w = rng.Next();
  double h1 = ShannonEntropyBits(AsBytes(words), 8);
  double h2 = ShannonEntropyBits(AsBytes(words), 8);
  EXPECT_EQ(h1, h2);  // bitwise identical, not just close
}

TEST(EntropyTest, SampledEstimateMatchesExactSmallAlphabet) {
  // A corpus over a small alphabet where the exact entropy is known in
  // closed form: 32 equiprobable 8-byte symbols -> exactly 5 bits. The
  // input is large enough to force sampling, and the sampled estimate
  // must pin the exact value closely.
  constexpr size_t kWords = (1 << 17) + 7;
  std::vector<uint64_t> words(kWords);
  Rng rng(42);
  for (auto& w : words) {
    // Both 32-bit halves equal h, h distinct per symbol (no carries).
    uint64_t h = 0x01010101ULL * (rng.UniformInt(32) + 1);
    w = (h << 32) | h;
  }
  double h8 = ShannonEntropyBits(AsBytes(words), 8);
  EXPECT_NEAR(h8, 5.0, 0.02);

  // Same corpus read as 4-byte words: each 8-byte symbol contributes
  // two identical 4-byte halves, so the alphabet is still 32 symbols
  // with the same distribution -> still ~5 bits, now with 2x the words.
  double h4 = ShannonEntropyBits(AsBytes(words), 4);
  EXPECT_NEAR(h4, 5.0, 0.02);
}

TEST(EntropyTest, SmallInputsStayExact) {
  // Below the sampling threshold the histogram is exact: 4 equiprobable
  // 8-byte symbols -> exactly 2 bits, no estimation error at all.
  std::vector<uint64_t> words(4096);
  for (size_t i = 0; i < words.size(); ++i) words[i] = 0xABCD + i % 4;
  EXPECT_NEAR(ShannonEntropyBits(AsBytes(words), 8), 2.0, 1e-12);
}

TEST(MeansTest, HarmonicAndArithmetic) {
  double v[3] = {1.0, 2.0, 4.0};
  EXPECT_NEAR(HarmonicMean(v, 3), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
  EXPECT_NEAR(ArithmeticMean(v, 3), 7.0 / 3.0, 1e-12);
  EXPECT_EQ(HarmonicMean(v, 0), 0.0);
  EXPECT_EQ(ArithmeticMean(v, 0), 0.0);
}

TEST(MeansTest, HarmonicSkipsNonPositive) {
  double v[3] = {0.0, 2.0, 2.0};
  EXPECT_NEAR(HarmonicMean(v, 3), 2.0, 1e-12);
}

// --- thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelRangesPartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelRanges(10, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.push_back({b, e});
  });
  size_t total = 0;
  std::set<size_t> seen;
  for (auto [b, e] : ranges) {
    for (size_t i = b; i < e; ++i) {
      EXPECT_TRUE(seen.insert(i).second) << "index covered twice";
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(ThreadPoolTest, ZeroElementsNoCrash) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SharedPoolCoversRangeFromManyCallers) {
  // Concurrent ParallelFor calls on the one shared pool must each join
  // exactly their own work.
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&failures] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<int>> hits(257);
        ThreadPool::Shared().ParallelFor(
            hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
        for (auto& h : hits) {
          if (h.load() != 1) ++failures;
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A task that calls ParallelFor on its own pool must degrade to inline
  // execution rather than deadlock on the occupied workers.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, MaxParallelismOneRunsInOrder) {
  ThreadPool pool(4);
  std::vector<size_t> order;
  pool.ParallelFor(
      10, [&order](size_t i) { order.push_back(i); },
      {/*grain=*/0, /*max_parallelism=*/1});
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ResolveThreadsClampsOnlyTheFallback) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);  // explicit requests honoured
  EXPECT_EQ(ThreadPool::ResolveThreads(48), 48);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), ThreadPool::DefaultThreads());
  EXPECT_EQ(ThreadPool::ResolveThreads(-1), ThreadPool::DefaultThreads());
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

// --- mem tracker -----------------------------------------------------------

TEST(MemTrackerTest, BufferAllocationsTracked) {
  auto& t = MemTracker::Global();
  t.ResetPeak();
  size_t before = t.current();
  {
    Buffer b(1 << 20);
    EXPECT_GE(t.current(), before + (1u << 20));
    EXPECT_GE(t.peak(), before + (1u << 20));
  }
  EXPECT_EQ(t.current(), before);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  // Plain assignment, not +=: compound assignment on volatile is deprecated
  // in C++20.
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GT(t.ElapsedNanos(), 0u);
}

TEST(ThroughputTest, Computation) {
  EXPECT_DOUBLE_EQ(ThroughputGBps(2e9, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ThroughputGBps(100, 0.0), 0.0);
}

// ---------------------------------------------------------------------------
// fs: the durable-filesystem helpers under every on-disk writer
// ---------------------------------------------------------------------------

namespace {

std::string FsTestDir(const char* tag) {
  std::string dir = "/tmp/fcbench_fs_" + std::to_string(::getpid()) + "_" +
                    tag;
  EXPECT_TRUE(fs::CreateDir(dir).ok());
  return dir;
}

void FsTestCleanup(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) fs::RemoveFile(fs::JoinPath(dir, n));
  }
  ::rmdir(dir.c_str());
}

}  // namespace

TEST(FsTest, PathHelpers) {
  EXPECT_EQ(fs::DirOf("/a/b/c.col"), "/a/b");
  EXPECT_EQ(fs::DirOf("/top"), "/");
  EXPECT_EQ(fs::DirOf("bare"), ".");
  EXPECT_EQ(fs::JoinPath("/a/b", "c"), "/a/b/c");
  EXPECT_EQ(fs::JoinPath("/a/b/", "c"), "/a/b/c");
  EXPECT_TRUE(fs::IsTempPath("seg-000001.0.col.tmp"));
  EXPECT_TRUE(fs::IsTempPath("/x/y/MANIFEST.tmp"));
  EXPECT_FALSE(fs::IsTempPath("MANIFEST"));
  EXPECT_FALSE(fs::IsTempPath("tmp.col"));
}

TEST(FsTest, WriteFileAtomicPublishesWholeFilesOnly) {
  const std::string dir = FsTestDir("atomic");
  const std::string path = fs::JoinPath(dir, "blob");
  const uint8_t v1[] = {1, 2, 3};
  const uint8_t v2[] = {9, 8, 7, 6};
  ASSERT_TRUE(fs::WriteFileAtomic(path, ByteSpan(v1, 3)).ok());
  auto r = fs::ReadFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToVector(), (std::vector<uint8_t>{1, 2, 3}));
  // Overwrite goes through the same temp+rename path.
  ASSERT_TRUE(fs::WriteFileAtomic(path, ByteSpan(v2, 4), false).ok());
  r = fs::ReadFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToVector(), (std::vector<uint8_t>{9, 8, 7, 6}));
  EXPECT_TRUE(fs::FileExists(path));
  auto size = fs::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 4u);
  // A successful publish leaves no .tmp residue behind.
  auto names = fs::ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const auto& n : names.value()) EXPECT_FALSE(fs::IsTempPath(n)) << n;
  FsTestCleanup(dir);
}

TEST(FsTest, MissingPathsAreHandledGracefully) {
  const std::string missing = "/tmp/fcbench_fs_missing_" +
                              std::to_string(::getpid());
  EXPECT_FALSE(fs::ReadFile(missing).ok());
  EXPECT_FALSE(fs::FileExists(missing));
  EXPECT_FALSE(fs::FileSize(missing).ok());
  EXPECT_FALSE(fs::ListDir(missing).ok());
  // RemoveFile is idempotent cleanup: OK when nothing is there.
  EXPECT_TRUE(fs::RemoveFile(missing).ok());
  // CreateDir is likewise OK when the directory already exists.
  const std::string dir = FsTestDir("mkdir");
  EXPECT_TRUE(fs::CreateDir(dir).ok());
  FsTestCleanup(dir);
}

TEST(FsTest, ListDirReturnsSortedNames) {
  const std::string dir = FsTestDir("listdir");
  const uint8_t b = 0;
  for (const char* n : {"banana", "apple", "cherry"}) {
    ASSERT_TRUE(
        fs::WriteFileAtomic(fs::JoinPath(dir, n), ByteSpan(&b, 1), false)
            .ok());
  }
  auto names = fs::ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(),
            (std::vector<std::string>{"apple", "banana", "cherry"}));
  FsTestCleanup(dir);
}

TEST(FsTest, AppendFileAppendsAndTruncatesOnCreate) {
  const std::string dir = FsTestDir("append");
  const std::string path = fs::JoinPath(dir, "log");
  {
    auto f = fs::AppendFile::Create(path, /*durable=*/false);
    ASSERT_TRUE(f.ok());
    const uint8_t a[] = {1, 2};
    const uint8_t c[] = {3};
    ASSERT_TRUE(f.value().Append(ByteSpan(a, 2)).ok());
    ASSERT_TRUE(f.value().Append(ByteSpan(c, 1)).ok());
    EXPECT_EQ(f.value().offset(), 3u);
    ASSERT_TRUE(f.value().Sync().ok());
    ASSERT_TRUE(f.value().Close().ok());
  }
  auto r = fs::ReadFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToVector(), (std::vector<uint8_t>{1, 2, 3}));
  {
    // Create truncates: a WAL never appends to a possibly-torn file.
    auto f = fs::AppendFile::Create(path, false);
    ASSERT_TRUE(f.ok());
    const uint8_t n = 9;
    ASSERT_TRUE(f.value().Append(ByteSpan(&n, 1)).ok());
    ASSERT_TRUE(f.value().Close().ok());
  }
  r = fs::ReadFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToVector(), (std::vector<uint8_t>{9}));
  FsTestCleanup(dir);
}

}  // namespace
}  // namespace fcbench
