// Tests for the roofline model (paper §6.3 / Figure 11).

#include <gtest/gtest.h>

#include "roofline/roofline.h"

namespace fcbench::roofline {
namespace {

TEST(RooflineTest, CpuMachineMatchesFigure11a) {
  auto m = CpuRoofline();
  EXPECT_DOUBLE_EQ(m.peak_gops, 191.0);
  ASSERT_EQ(m.roofs.size(), 4u);
  EXPECT_EQ(m.roofs.back().name, "DRAM");
  EXPECT_DOUBLE_EQ(m.roofs.back().gbps, 214.5);
}

TEST(RooflineTest, GpuMachineMatchesFigure11b) {
  auto m = GpuRoofline();
  EXPECT_DOUBLE_EQ(m.peak_gops, 416.4);
  EXPECT_DOUBLE_EQ(m.roofs.back().gbps, 621.5);
}

TEST(RooflineTest, AttainableIsRooflineMin) {
  auto m = CpuRoofline();
  // Below the ridge point: bandwidth-limited.
  EXPECT_DOUBLE_EQ(AttainableGops(m, 0.1), 0.1 * 214.5);
  // Far above the ridge point: compute-limited.
  EXPECT_DOUBLE_EQ(AttainableGops(m, 100.0), 191.0);
}

TEST(RooflineTest, ClassifiesMemoryBound) {
  auto m = GpuRoofline();
  // Intensity 0.2 ops/B, achieving 80% of the bandwidth roof.
  KernelPoint p{"gfc", 0.2, 0.2 * 621.5 * 0.8};
  EXPECT_EQ(Classify(m, p), Bound::kMemoryBound);
}

TEST(RooflineTest, ClassifiesComputeBound) {
  auto m = CpuRoofline();
  KernelPoint p{"ndzip", 10.0, 150.0};  // near the 191 GOP/s ceiling
  EXPECT_EQ(Classify(m, p), Bound::kComputeBound);
}

TEST(RooflineTest, ClassifiesLatencyBound) {
  auto m = CpuRoofline();
  // Serial methods sit far below both roofs (§6.3 analysis (1)).
  KernelPoint p{"fpzip", 4.0, 0.3};
  EXPECT_EQ(Classify(m, p), Bound::kLatencyBound);
}

TEST(RooflineTest, PointFromThroughput) {
  auto p = PointFromThroughput("buff", 0.9, 0.2e9);  // 0.2 GB/s
  EXPECT_DOUBLE_EQ(p.intensity, 0.9);
  EXPECT_NEAR(p.achieved_gops, 0.18, 1e-12);
}

TEST(RooflineTest, PointFromKernelStats) {
  gpusim::KernelStats stats;
  stats.warp_instructions = 1000;
  stats.divergent_instructions = 0;
  stats.bytes_read = 64000;
  stats.bytes_written = 0;
  auto p = PointFromKernelStats("mpc", stats, 1e-6);
  EXPECT_NEAR(p.intensity, 1000.0 * 32 / 64000.0, 1e-12);
  EXPECT_NEAR(p.achieved_gops, 1000.0 * 32 / 1e-6 / 1e9, 1e-6);
}

TEST(RooflineTest, MethodIntensitiesDefined) {
  for (const char* m :
       {"gorilla", "chimp128", "pfpc", "fpzip", "spdp", "bitshuffle_lz4",
        "bitshuffle_zstd", "ndzip_cpu", "buff"}) {
    EXPECT_GT(CpuMethodOpsPerByte(m), 0.0) << m;
  }
  // fpzip's range coder is the most compute-heavy per byte.
  EXPECT_GT(CpuMethodOpsPerByte("fpzip"), CpuMethodOpsPerByte("gorilla"));
}

TEST(RooflineTest, AsciiRenderContainsRoofAndPoints) {
  auto m = CpuRoofline();
  std::vector<KernelPoint> pts = {{"fpzip", 4.0, 0.3}, {"ndzip", 1.6, 3.5}};
  std::string art = RenderAscii(m, pts);
  EXPECT_NE(art.find("Xeon"), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find("fpzip"), std::string::npos);
  EXPECT_NE(art.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace fcbench::roofline
