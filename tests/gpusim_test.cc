// Tests for the SIMT simulator, its cost model, and the five GPU-based
// methods of paper §4 (GFC, MPC, nvCOMP::LZ4/bitcomp sims, ndzip-GPU).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "compressors/ndzip.h"
#include "gpusim/device.h"
#include "gpusim/gfc.h"
#include "gpusim/mpc.h"
#include "gpusim/ndzip_gpu.h"
#include "gpusim/nvcomp_sim.h"
#include "util/rng.h"

namespace fcbench::gpusim {
namespace {

template <typename F>
std::vector<F> Walk(size_t n, uint64_t seed) {
  std::vector<F> v(n);
  Rng rng(seed);
  double x = 100.0;
  for (auto& f : v) {
    x += rng.Normal();
    f = static_cast<F>(x);
  }
  return v;
}

// --- simulator ---------------------------------------------------------

TEST(SimtDeviceTest, LaunchRunsEveryWarp) {
  SimtDevice dev;
  std::vector<std::atomic<int>> hits(100);
  dev.Launch(100, [&](WarpCtx& ctx) { hits[ctx.warp_id()].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SimtDeviceTest, StatsAccumulateAcrossWarps) {
  SimtDevice dev;
  KernelStats stats = dev.Launch(10, [](WarpCtx& ctx) {
    ctx.CountInstr(5);
    ctx.CountRead(100);
    ctx.CountWrite(50);
    ctx.CountDivergent(2);
  });
  EXPECT_EQ(stats.warp_instructions, 50u);
  EXPECT_EQ(stats.bytes_read, 1000u);
  EXPECT_EQ(stats.bytes_written, 500u);
  EXPECT_EQ(stats.divergent_instructions, 20u);
}

TEST(SimtDeviceTest, WarpPrimitives) {
  SimtDevice dev;
  dev.Launch(1, [](WarpCtx& ctx) {
    bool pred[32] = {};
    pred[0] = pred[5] = pred[31] = true;
    uint32_t mask = ctx.Ballot(pred);
    EXPECT_EQ(mask, (1u << 0) | (1u << 5) | (1u << 31));

    uint32_t in[32], out[32];
    for (int i = 0; i < 32; ++i) in[i] = static_cast<uint32_t>(i);
    ctx.PrefixSumExclusive(in, out);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[31], 31u * 30u / 2u);

    uint64_t vals[32];
    for (int i = 0; i < 32; ++i) vals[i] = 1000 + i;
    EXPECT_EQ(ctx.Shfl(vals, 7), 1007u);
  });
}

TEST(CostModelTest, MemoryRooflineDominatesLargeTraffic) {
  SimtDevice dev;
  KernelStats stats;
  stats.bytes_read = 10ull << 30;  // 10 GiB of traffic
  stats.warp_instructions = 1000;  // negligible compute
  double t = dev.ModelKernelSeconds(stats);
  double expected = 10.0 * (1ull << 30) / (dev.spec().mem_bw_gbps * 1e9);
  EXPECT_NEAR(t, expected, expected * 0.05);
}

TEST(CostModelTest, DivergenceAddsComputeTime) {
  SimtDevice dev;
  KernelStats convergent;
  convergent.warp_instructions = 1ull << 30;
  KernelStats divergent = convergent;
  divergent.divergent_instructions = 10ull << 30;
  EXPECT_GT(dev.ModelKernelSeconds(divergent),
            5 * dev.ModelKernelSeconds(convergent));
}

TEST(CostModelTest, PcieTransferIsSlowerThanDeviceMemory) {
  SimtDevice dev;
  uint64_t gb = 1ull << 30;
  KernelStats stats;
  stats.bytes_read = gb;
  EXPECT_GT(dev.ModelTransferSeconds(gb), dev.ModelKernelSeconds(stats));
}

// --- GPU method round trips ----------------------------------------------

struct GpuMethodCase {
  const char* name;
  std::function<std::unique_ptr<Compressor>()> make;
  bool f64_only;
};

std::vector<GpuMethodCase> GpuMethods() {
  CompressorConfig cfg;
  cfg.threads = 4;
  return {
      {"gfc", [cfg] { return GfcCompressor::Make(cfg); }, true},
      {"mpc", [cfg] { return MpcCompressor::Make(cfg); }, false},
      {"nv_lz4", [cfg] { return NvLz4SimCompressor::Make(cfg); }, false},
      {"nv_bitcomp", [cfg] { return NvBitcompSimCompressor::Make(cfg); },
       false},
      {"ndzip_gpu", [cfg] { return NdzipGpuCompressor::Make(cfg); }, false},
  };
}

class GpuRoundTrip : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(GpuRoundTrip, BitExact) {
  auto [mi, f64] = GetParam();
  GpuMethodCase m = GpuMethods()[mi];
  if (m.f64_only && !f64) GTEST_SKIP() << "double-precision only";
  auto comp = m.make();

  Buffer c, d;
  if (f64) {
    auto v = Walk<double>(50000, 5);
    auto desc = DataDesc::Make(DType::kFloat64, {50000});
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok());
    ASSERT_EQ(d.size(), v.size() * 8);
    EXPECT_EQ(std::memcmp(d.data(), v.data(), d.size()), 0) << m.name;
  } else {
    auto v = Walk<float>(50000, 6);
    auto desc = DataDesc::Make(DType::kFloat32, {50000});
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok());
    ASSERT_EQ(d.size(), v.size() * 4);
    EXPECT_EQ(std::memcmp(d.data(), v.data(), d.size()), 0) << m.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGpuMethods, GpuRoundTrip,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Bool()),
    [](const auto& param_info) {
      return std::string(GpuMethods()[std::get<0>(param_info.param)].name) +
             (std::get<1>(param_info.param) ? "_f64" : "_f32");
    });

TEST(GpuRoundTripOdd, NonChunkMultipleSizes) {
  for (size_t n : {size_t(1), size_t(31), size_t(33), size_t(1025),
                   size_t(4097)}) {
    auto v = Walk<double>(n, n);
    auto desc = DataDesc::Make(DType::kFloat64, {n});
    for (auto& m : GpuMethods()) {
      auto comp = m.make();
      Buffer c, d;
      ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok())
          << m.name << " n=" << n;
      ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok())
          << m.name << " n=" << n;
      EXPECT_EQ(std::memcmp(d.data(), v.data(), v.size() * 8), 0)
          << m.name << " n=" << n;
    }
  }
}

// --- paper-shape assertions ------------------------------------------------

TEST(GfcTest, RejectsOversizedInput) {
  auto comp = GfcCompressor::Make({});
  // A fake span with > 512 MB extent; compression must refuse before
  // touching the data, so a null span of claimed size is not needed --
  // construct a desc/span pair of 513 MB via a small repeated buffer is
  // impractical; instead verify the documented limit constant via a
  // 0-copy span over a large mmap-free dummy is skipped. We test the
  // error path with a minimal allocation.
  std::vector<double> v((513ull << 20) / 8);
  auto desc = DataDesc::Make(DType::kFloat64, {v.size()});
  Buffer out;
  auto st = comp->Compress(AsBytes(v), desc, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(GfcTest, RejectsSinglePrecision) {
  auto comp = GfcCompressor::Make({});
  std::vector<float> v(1024, 1.0f);
  auto desc = DataDesc::Make(DType::kFloat32, {1024});
  Buffer out;
  EXPECT_EQ(comp->Compress(AsBytes(v), desc, &out).code(),
            StatusCode::kNotSupported);
}

TEST(GpuTimingTest, ModeledThroughputOrdering) {
  // Table 5 shape: bitcomp fastest, then ndzip-GPU / GFC, MPC slower,
  // nv::LZ4 slowest GPU compressor by a wide margin.
  auto v = Walk<double>(1 << 20, 9);  // 8 MiB
  auto desc = DataDesc::Make(DType::kFloat64, {1 << 20});
  auto modeled_ct = [&](std::unique_ptr<Compressor> comp) {
    Buffer c;
    EXPECT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    const GpuTiming* t = comp->last_gpu_timing();
    EXPECT_NE(t, nullptr);
    return static_cast<double>(v.size() * 8) / t->kernel_seconds / 1e9;
  };
  double bitcomp = modeled_ct(NvBitcompSimCompressor::Make({}));
  double gfc = modeled_ct(GfcCompressor::Make({}));
  double mpc = modeled_ct(MpcCompressor::Make({}));
  double nvlz4 = modeled_ct(NvLz4SimCompressor::Make({}));
  double ndzip_g = modeled_ct(NdzipGpuCompressor::Make({}));

  EXPECT_GT(bitcomp, gfc);
  EXPECT_GT(gfc, mpc);
  EXPECT_GT(mpc, nvlz4);
  EXPECT_GT(ndzip_g, mpc);
  // All modeled GPU rates far exceed a serial CPU method (paper: ~350x).
  EXPECT_GT(mpc, 5.0);   // GB/s
  EXPECT_GT(nvlz4, 0.5);
}

TEST(GpuTimingTest, HostToDeviceDominatesEndToEnd) {
  // Table 6 observation: H2D copy is non-negligible; for fast kernels the
  // transfer dwarfs kernel time.
  auto v = Walk<double>(1 << 20, 11);
  auto desc = DataDesc::Make(DType::kFloat64, {1 << 20});
  auto comp = NvBitcompSimCompressor::Make({});
  Buffer c;
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
  const GpuTiming* t = comp->last_gpu_timing();
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->h2d_seconds, t->kernel_seconds);
}

TEST(MpcTest, WordSizeMattersForRatio) {
  // §4.2: LNV6s needs the right word size. Compressing f64 data declared
  // as f32 must still round-trip (bytes are bytes) but with a worse ratio
  // on smooth double data.
  std::vector<double> v(1 << 16);
  Rng rng(13);
  double x = 0;
  for (auto& f : v) {
    x += 0.001;
    f = std::sin(x) * 1000.0;
  }
  auto comp = MpcCompressor::Make({});
  Buffer c64, c32;
  auto d64 = DataDesc::Make(DType::kFloat64, {v.size()});
  auto d32 = DataDesc::Make(DType::kFloat32, {v.size() * 2});
  ASSERT_TRUE(comp->Compress(AsBytes(v), d64, &c64).ok());
  ASSERT_TRUE(comp->Compress(AsBytes(v), d32, &c32).ok());
  EXPECT_LT(c64.size(), c32.size());
}

TEST(NdzipGpuTest, StreamIdenticalToCpu) {
  // Table 4 lists equal CR columns for ndzip-CPU and ndzip-GPU.
  auto v = Walk<float>(100000, 17);
  auto desc = DataDesc::Make(DType::kFloat32, {100000});
  CompressorConfig cfg;
  cfg.threads = 2;
  auto cpu = compressors::NdzipCompressor::Make(cfg);
  auto gpu = NdzipGpuCompressor::Make(cfg);
  Buffer cc, cg;
  ASSERT_TRUE(cpu->Compress(AsBytes(v), desc, &cc).ok());
  ASSERT_TRUE(gpu->Compress(AsBytes(v), desc, &cg).ok());
  ASSERT_EQ(cc.size(), cg.size());
  EXPECT_EQ(std::memcmp(cc.data(), cg.data(), cc.size()), 0);
}

TEST(NvBitcompTest, NearOneRatioOnRandomData) {
  // Paper Table 4: nv::btcmp sits at ~0.999 on unstructured data.
  std::vector<double> v(1 << 16);
  Rng rng(19);
  for (auto& f : v) f = rng.Uniform(-1e9, 1e9);
  auto comp = NvBitcompSimCompressor::Make({});
  Buffer c;
  auto desc = DataDesc::Make(DType::kFloat64, {v.size()});
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
  double cr = static_cast<double>(v.size() * 8) / c.size();
  EXPECT_GT(cr, 0.9);
  EXPECT_LT(cr, 1.1);
}

TEST(CorruptionTest, GpuStreamsAreSafe) {
  auto v = Walk<double>(20000, 23);
  auto desc = DataDesc::Make(DType::kFloat64, {20000});
  for (auto& m : GpuMethods()) {
    auto comp = m.make();
    Buffer c;
    ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
    Buffer copy = Buffer::FromSpan(c.span());
    for (size_t victim = 0; victim < copy.size(); victim += 173) {
      copy.data()[victim] ^= 0xff;
      Buffer d;
      (void)comp->Decompress(copy.span(), desc, &d);
      copy.data()[victim] ^= 0xff;
    }
    for (size_t cut : {c.size() / 3, size_t(2)}) {
      Buffer d;
      (void)comp->Decompress(c.span().subspan(0, cut), desc, &d);
    }
  }
}

}  // namespace
}  // namespace fcbench::gpusim
