// Unit + property tests for the codec substrates (LZ4, Huffman, LZH,
// range coder, binary arithmetic coder).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "codecs/arith.h"
#include "codecs/fse.h"
#include "codecs/huffman.h"
#include "codecs/intcodec.h"
#include "codecs/lz4.h"
#include "codecs/lzh.h"
#include "codecs/range_coder.h"
#include "util/bitio.h"
#include "util/entropy.h"
#include "util/rng.h"

namespace fcbench::codecs {
namespace {

// Pattern generators shared by the parameterized round-trip suites.
enum class Pattern {
  kEmpty,
  kTiny,
  kConstant,
  kRamp,
  kRepeated,
  kRandom,
  kTextLike,
  kFloatLike,
};

std::string PatternName(Pattern p) {
  switch (p) {
    case Pattern::kEmpty: return "Empty";
    case Pattern::kTiny: return "Tiny";
    case Pattern::kConstant: return "Constant";
    case Pattern::kRamp: return "Ramp";
    case Pattern::kRepeated: return "Repeated";
    case Pattern::kRandom: return "Random";
    case Pattern::kTextLike: return "TextLike";
    case Pattern::kFloatLike: return "FloatLike";
  }
  return "?";
}

std::vector<uint8_t> MakePattern(Pattern p, size_t n) {
  Rng rng(static_cast<uint64_t>(p) * 1000 + n);
  std::vector<uint8_t> data;
  switch (p) {
    case Pattern::kEmpty:
      return data;
    case Pattern::kTiny:
      data = {0x42, 0x43, 0x44};
      return data;
    case Pattern::kConstant:
      data.assign(n, 0x7f);
      return data;
    case Pattern::kRamp:
      data.resize(n);
      for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint8_t>(i);
      return data;
    case Pattern::kRepeated: {
      const char* phrase = "floating-point compression benchmark ";
      size_t len = std::strlen(phrase);
      data.resize(n);
      for (size_t i = 0; i < n; ++i) data[i] = phrase[i % len];
      return data;
    }
    case Pattern::kRandom:
      data.resize(n);
      for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
      return data;
    case Pattern::kTextLike:
      data.resize(n);
      for (auto& b : data) {
        // Zipf-ish distribution over a small alphabet.
        uint64_t r = rng.UniformInt(100);
        b = (r < 40) ? ' ' : (r < 70) ? 'e' : (r < 85) ? 't'
            : static_cast<uint8_t>('a' + rng.UniformInt(26));
      }
      return data;
    case Pattern::kFloatLike: {
      // Smooth single-precision series reinterpreted as bytes: the exponent
      // bytes repeat while mantissa bytes vary (the structure every studied
      // compressor exploits).
      size_t count = n / 4;
      data.resize(count * 4);
      double x = 1000.0;
      for (size_t i = 0; i < count; ++i) {
        x += rng.Normal() * 0.01;
        float f = static_cast<float>(x);
        std::memcpy(&data[i * 4], &f, 4);
      }
      return data;
    }
  }
  return data;
}

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<Pattern, size_t>> {};

TEST_P(CodecRoundTrip, Lz4) {
  auto [pattern, size] = GetParam();
  auto input = MakePattern(pattern, size);
  Buffer comp;
  Lz4FrameCompress(ByteSpan(input.data(), input.size()), &comp);
  Buffer decomp;
  ASSERT_TRUE(Lz4FrameDecompress(comp.span(), &decomp).ok())
      << PatternName(pattern) << " size=" << size;
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST_P(CodecRoundTrip, Lz4ChainedMatcher) {
  auto [pattern, size] = GetParam();
  auto input = MakePattern(pattern, size);
  Lz4Codec codec(Lz4Codec::Options{.max_attempts = 16});
  Buffer comp;
  codec.Compress(ByteSpan(input.data(), input.size()), &comp);
  Buffer decomp;
  ASSERT_TRUE(codec.Decompress(comp.span(), input.size(), &decomp).ok());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST_P(CodecRoundTrip, Huffman) {
  auto [pattern, size] = GetParam();
  auto input = MakePattern(pattern, size);
  Buffer comp;
  HuffmanCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  Buffer decomp;
  size_t consumed = 0;
  ASSERT_TRUE(HuffmanCodec::Decompress(comp.span(), &consumed, &decomp).ok());
  EXPECT_EQ(consumed, comp.size());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST_P(CodecRoundTrip, Lzh) {
  auto [pattern, size] = GetParam();
  auto input = MakePattern(pattern, size);
  Buffer comp;
  LzhCodec().Compress(ByteSpan(input.data(), input.size()), &comp);
  Buffer decomp;
  ASSERT_TRUE(LzhCodec::Decompress(comp.span(), &decomp).ok());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST_P(CodecRoundTrip, Fse) {
  auto [pattern, size] = GetParam();
  auto input = MakePattern(pattern, size);
  Buffer comp;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  Buffer decomp;
  size_t consumed = 0;
  ASSERT_TRUE(FseCodec::Decompress(comp.span(), &consumed, &decomp).ok())
      << PatternName(pattern) << " size=" << size;
  EXPECT_EQ(consumed, comp.size());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST_P(CodecRoundTrip, LzhHuffmanBackend) {
  auto [pattern, size] = GetParam();
  auto input = MakePattern(pattern, size);
  LzhCodec codec(LzhCodec::Options{.entropy = LzhCodec::Entropy::kHuffman});
  Buffer comp;
  codec.Compress(ByteSpan(input.data(), input.size()), &comp);
  Buffer decomp;
  ASSERT_TRUE(LzhCodec::Decompress(comp.span(), &decomp).ok());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, CodecRoundTrip,
    ::testing::Combine(
        ::testing::Values(Pattern::kEmpty, Pattern::kTiny, Pattern::kConstant,
                          Pattern::kRamp, Pattern::kRepeated,
                          Pattern::kRandom, Pattern::kTextLike,
                          Pattern::kFloatLike),
        ::testing::Values(size_t(64), size_t(4096), size_t(100000))),
    [](const auto& param_info) {
      return PatternName(std::get<0>(param_info.param)) + "_" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(Lz4Test, CompressesRepetitiveData) {
  auto input = MakePattern(Pattern::kRepeated, 100000);
  Buffer comp;
  Lz4FrameCompress(ByteSpan(input.data(), input.size()), &comp);
  EXPECT_LT(comp.size(), input.size() / 10);
}

TEST(Lz4Test, RandomDataExpandsBoundedly) {
  auto input = MakePattern(Pattern::kRandom, 100000);
  Buffer comp;
  Lz4FrameCompress(ByteSpan(input.data(), input.size()), &comp);
  EXPECT_LT(comp.size(), input.size() + input.size() / 100 + 64);
}

TEST(Lz4Test, RejectsCorruptOffset) {
  auto input = MakePattern(Pattern::kRepeated, 10000);
  Buffer comp;
  Lz4FrameCompress(ByteSpan(input.data(), input.size()), &comp);
  // Flip bytes in the middle; decoder must not crash or overrun.
  for (size_t victim = 8; victim < comp.size(); victim += 97) {
    Buffer copy = Buffer::FromSpan(comp.span());
    copy.data()[victim] ^= 0xff;
    Buffer decomp;
    auto st = Lz4FrameDecompress(copy.span(), &decomp);
    // Either failure, or success producing the right size. We only require
    // memory safety plus size discipline.
    if (st.ok()) {
      EXPECT_EQ(decomp.size(), input.size());
    }
  }
}

TEST(Lz4Test, ChainedMatcherNeverWorseRatio) {
  auto input = MakePattern(Pattern::kTextLike, 65536);
  Buffer fast, chained;
  Lz4Codec(Lz4Codec::Options{.max_attempts = 1})
      .Compress(ByteSpan(input.data(), input.size()), &fast);
  Lz4Codec(Lz4Codec::Options{.max_attempts = 32})
      .Compress(ByteSpan(input.data(), input.size()), &chained);
  EXPECT_LE(chained.size(), fast.size() + 16);
}

TEST(HuffmanTest, NearEntropyOnSkewedData) {
  auto input = MakePattern(Pattern::kTextLike, 1 << 16);
  Buffer comp;
  HuffmanCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  double h = ByteEntropyBits(ByteSpan(input.data(), input.size()));
  double bits_per_byte = 8.0 * comp.size() / input.size();
  // Canonical Huffman is within 1 bit/symbol of entropy plus header cost.
  EXPECT_LT(bits_per_byte, h + 1.0 + 0.2);
  EXPECT_GE(bits_per_byte, h * 0.99);
}

TEST(HuffmanTest, CodeLengthsSatisfyKraft) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t hist[256] = {0};
    int syms = 1 + static_cast<int>(rng.UniformInt(256));
    for (int s = 0; s < syms; ++s) {
      hist[s] = 1 + rng.UniformInt(100000);
    }
    uint8_t lengths[256];
    HuffmanCodec::BuildCodeLengths(hist, lengths);
    double kraft = 0.0;
    for (int s = 0; s < 256; ++s) {
      if (lengths[s] > 0) {
        EXPECT_LE(lengths[s], HuffmanCodec::kMaxCodeLen);
        kraft += std::pow(2.0, -lengths[s]);
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
  }
}

TEST(HuffmanTest, CanonicalCodesArePrefixFree) {
  uint64_t hist[256] = {0};
  for (int s = 0; s < 256; ++s) hist[s] = (s % 7) + 1;
  uint8_t lengths[256];
  uint16_t codes[256];
  HuffmanCodec::BuildCodeLengths(hist, lengths);
  HuffmanCodec::AssignCanonicalCodes(lengths, codes);
  for (int a = 0; a < 256; ++a) {
    for (int b = a + 1; b < 256; ++b) {
      if (lengths[a] == 0 || lengths[b] == 0) continue;
      int la = lengths[a], lb = lengths[b];
      int l = std::min(la, lb);
      EXPECT_NE(codes[a] >> (la - l), codes[b] >> (lb - l))
          << "codes for " << a << " and " << b << " share a prefix";
    }
  }
}

TEST(LzhTest, BeatsLz4OnText) {
  auto input = MakePattern(Pattern::kTextLike, 1 << 18);
  Buffer lz4, lzh;
  Lz4FrameCompress(ByteSpan(input.data(), input.size()), &lz4);
  LzhCodec().Compress(ByteSpan(input.data(), input.size()), &lzh);
  EXPECT_LT(lzh.size(), lz4.size());
}

TEST(LzhTest, CorruptInputIsSafe) {
  auto input = MakePattern(Pattern::kTextLike, 20000);
  Buffer comp;
  LzhCodec().Compress(ByteSpan(input.data(), input.size()), &comp);
  for (size_t victim = 0; victim < comp.size(); victim += 131) {
    Buffer copy = Buffer::FromSpan(comp.span());
    copy.data()[victim] ^= 0x55;
    Buffer decomp;
    auto st = LzhCodec::Decompress(copy.span(), &decomp);
    (void)st;  // must not crash; corruption detection is best-effort
  }
}

// --- FSE / tANS -------------------------------------------------------------

TEST(FseTest, NormalizationInvariants) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t hist[256] = {0};
    int syms = 2 + static_cast<int>(rng.UniformInt(255));
    for (int s = 0; s < syms; ++s) {
      // Mix of rare and common symbols, including counts of exactly 1.
      hist[s] = 1 + rng.UniformInt(trial % 2 == 0 ? 10 : 1000000);
    }
    int table_log = FseCodec::ChooseTableLog(1 << 16, syms);
    uint16_t norm[256];
    FseCodec::NormalizeHistogram(hist, table_log, norm);
    uint32_t sum = 0;
    for (int s = 0; s < 256; ++s) {
      if (hist[s] > 0) {
        EXPECT_GE(norm[s], 1u) << "present symbol lost its slot";
      } else {
        EXPECT_EQ(norm[s], 0u) << "absent symbol gained probability";
      }
      sum += norm[s];
    }
    EXPECT_EQ(sum, 1u << table_log);
  }
}

TEST(FseTest, ChooseTableLogBounds) {
  // Must always hold every distinct symbol and stay within the cap.
  for (int distinct = 1; distinct <= 256; ++distinct) {
    for (size_t n : {size_t(1), size_t(300), size_t(1) << 20}) {
      int log = FseCodec::ChooseTableLog(n, distinct);
      EXPECT_GE(1 << log, distinct);
      EXPECT_LE(log, FseCodec::kMaxTableLog);
      EXPECT_GE(log, 1);
    }
  }
}

TEST(FseTest, DecodeTableCoversAllSubStates) {
  // Duda's construction: each symbol s with normalized frequency f must own
  // exactly the sub-states x in [f, 2f), i.e. new_state_base + 2^num_bits
  // ranges tile [0, table_size) per symbol.
  uint16_t norm[256] = {0};
  norm['a'] = 300;
  norm['b'] = 150;
  norm['c'] = 12;
  norm['d'] = 512 - 300 - 150 - 12;
  std::vector<FseCodec::DecodeEntry> table;
  ASSERT_TRUE(FseCodec::BuildDecodeTable(norm, 9, &table, nullptr).ok());
  ASSERT_EQ(table.size(), 512u);
  std::array<uint64_t, 256> seen_count{};
  std::array<uint64_t, 256> covered{};  // states covered per symbol
  for (const auto& e : table) {
    ++seen_count[e.symbol];
    covered[e.symbol] += uint64_t(1) << e.num_bits;
    EXPECT_LE(e.new_state_base + (uint64_t(1) << e.num_bits), 512u);
  }
  for (int s : {'a', 'b', 'c', 'd'}) {
    EXPECT_EQ(seen_count[s], norm[s]);
    EXPECT_EQ(covered[s], 512u) << "symbol " << char(s)
                                << " does not tile the state space";
  }
}

TEST(FseTest, RejectsBadFrequencySum) {
  uint16_t norm[256] = {0};
  norm[0] = 100;
  norm[1] = 100;  // sums to 200, not 256
  std::vector<FseCodec::DecodeEntry> table;
  EXPECT_FALSE(FseCodec::BuildDecodeTable(norm, 8, &table, nullptr).ok());
}

TEST(FseTest, BeatsHuffmanOnHighlySkewedData) {
  // 97% one symbol: entropy ~0.3 bits/byte. Huffman floors at 1 bit per
  // symbol; tANS codes in fractional bits and must land well below that.
  Rng rng(43);
  std::vector<uint8_t> input(1 << 17);
  for (auto& b : input) {
    b = rng.UniformInt(100) < 97 ? 0x20 : static_cast<uint8_t>(rng.Next());
  }
  Buffer fse, huff;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &fse);
  HuffmanCodec::Compress(ByteSpan(input.data(), input.size()), &huff);
  double fse_bits = 8.0 * fse.size() / input.size();
  double huff_bits = 8.0 * huff.size() / input.size();
  EXPECT_GE(huff_bits, 1.0);
  EXPECT_LT(fse_bits, 0.75);
  double h = ByteEntropyBits(ByteSpan(input.data(), input.size()));
  EXPECT_LT(fse_bits, h + 0.25) << "should be near the Shannon bound";
}

TEST(FseTest, NearEntropyOnTextLikeData) {
  auto input = MakePattern(Pattern::kTextLike, 1 << 16);
  Buffer comp;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  double h = ByteEntropyBits(ByteSpan(input.data(), input.size()));
  double bits_per_byte = 8.0 * comp.size() / input.size();
  EXPECT_LT(bits_per_byte, h + 0.35);
  EXPECT_GE(bits_per_byte, h * 0.99);
}

TEST(FseTest, SingleSymbolUsesRleMode) {
  std::vector<uint8_t> input(100000, 0xab);
  Buffer comp;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  EXPECT_LT(comp.size(), 16u);
  Buffer decomp;
  size_t consumed = 0;
  ASSERT_TRUE(FseCodec::Decompress(comp.span(), &consumed, &decomp).ok());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST(FseTest, RandomDataFallsBackToRaw) {
  auto input = MakePattern(Pattern::kRandom, 1 << 16);
  Buffer comp;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  // Raw mode: 1 mode byte + varint + payload.
  EXPECT_LE(comp.size(), input.size() + 8);
  EXPECT_EQ(comp.data()[0], FseCodec::kRawMode);
}

TEST(FseTest, TrailingBytesNotConsumed) {
  auto input = MakePattern(Pattern::kTextLike, 5000);
  Buffer comp;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  size_t frame = comp.size();
  comp.Append("garbage", 7);
  Buffer decomp;
  size_t consumed = 0;
  ASSERT_TRUE(FseCodec::Decompress(comp.span(), &consumed, &decomp).ok());
  EXPECT_EQ(consumed, frame);
}

TEST(FseTest, CorruptInputIsSafe) {
  auto input = MakePattern(Pattern::kTextLike, 20000);
  Buffer comp;
  FseCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  for (size_t victim = 0; victim < comp.size(); victim += 37) {
    Buffer copy = Buffer::FromSpan(comp.span());
    copy.data()[victim] ^= 0x41;
    Buffer decomp;
    size_t consumed = 0;
    auto st = FseCodec::Decompress(copy.span(), &consumed, &decomp);
    (void)st;  // must not crash; the state check bounds all table reads
  }
  for (size_t len = 0; len < comp.size(); len += 11) {
    Buffer decomp;
    size_t consumed = 0;
    auto st = FseCodec::Decompress(comp.span().subspan(0, len), &consumed,
                                   &decomp);
    (void)st;
  }
}

TEST(LzhTest, FseBackendNoWorseThanHuffmanOnSkewedTokens) {
  // Smooth float-like data yields heavily skewed token streams where the
  // fractional-bit advantage of FSE shows up end to end.
  auto input = MakePattern(Pattern::kFloatLike, 1 << 18);
  Buffer fse_out, huff_out;
  LzhCodec(LzhCodec::Options{.entropy = LzhCodec::Entropy::kFse})
      .Compress(ByteSpan(input.data(), input.size()), &fse_out);
  LzhCodec(LzhCodec::Options{.entropy = LzhCodec::Entropy::kHuffman})
      .Compress(ByteSpan(input.data(), input.size()), &huff_out);
  EXPECT_LE(fse_out.size(), huff_out.size() + huff_out.size() / 50);
}

// --- integer codecs ---------------------------------------------------------

TEST(ZigZagTest, RoundTripExtremes) {
  for (int64_t v : {int64_t(0), int64_t(-1), int64_t(1),
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min(), int64_t(-123456789),
                    int64_t(987654321)}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes map to small codes (the property delta coders rely on).
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(DeltaTest, RoundTripIsIdentity) {
  Rng rng(47);
  std::vector<uint64_t> in(10000);
  for (auto& v : in) v = rng.Next();
  std::vector<uint64_t> delta(in.size()), back(in.size());
  DeltaEncode(in.data(), in.size(), delta.data());
  DeltaDecode(delta.data(), delta.size(), back.data());
  EXPECT_EQ(back, in);
}

TEST(RleTest, RoundTripAndRatioOnRuns) {
  std::vector<uint8_t> input;
  for (int run = 0; run < 100; ++run) {
    input.insert(input.end(), 500, static_cast<uint8_t>(run));
  }
  Buffer comp;
  RleCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  EXPECT_LT(comp.size(), input.size() / 50);
  Buffer decomp;
  size_t consumed = 0;
  ASSERT_TRUE(RleCodec::Decompress(comp.span(), &consumed, &decomp).ok());
  EXPECT_EQ(consumed, comp.size());
  ASSERT_EQ(decomp.size(), input.size());
  if (!input.empty()) {  // memcmp with null pointers is UB even for n==0
    EXPECT_EQ(std::memcmp(decomp.data(), input.data(), input.size()), 0);
  }
}

TEST(RleTest, CorruptRunRejected) {
  Buffer comp;
  std::vector<uint8_t> input(1000, 7);
  RleCodec::Compress(ByteSpan(input.data(), input.size()), &comp);
  // Grow the declared run beyond the declared total: must error, not write
  // out of bounds.
  Buffer bad;
  PutVarint64(&bad, 10);    // claims 10 bytes
  PutVarint64(&bad, 4000);  // run of 4000
  bad.PushBack(9);
  Buffer decomp;
  size_t consumed = 0;
  EXPECT_FALSE(RleCodec::Decompress(bad.span(), &consumed, &decomp).ok());
}

class Simple8bRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Simple8bRoundTrip, Pattern) {
  Rng rng(100 + GetParam());
  std::vector<uint64_t> values;
  switch (GetParam()) {
    case 0:  // all zeros (240-per-word selector)
      values.assign(1000, 0);
      break;
    case 1:  // small values
      values.resize(1000);
      for (auto& v : values) v = rng.UniformInt(16);
      break;
    case 2:  // mixed magnitudes
      values.resize(1000);
      for (auto& v : values) {
        v = (rng.UniformInt(10) == 0) ? rng.Next() >> 4 : rng.UniformInt(100);
      }
      break;
    case 3:  // escape path: values above 2^60
      values.resize(100);
      for (auto& v : values) v = (uint64_t(1) << 60) + rng.UniformInt(1000);
      break;
    case 4:  // boundary: exactly 2^60 - 1 (largest packable)
      values.assign(7, (uint64_t(1) << 60) - 1);
      break;
    case 5:  // empty
      break;
    case 6:  // single value
      values = {42};
      break;
  }
  Buffer comp;
  Simple8bCodec::Compress(values, &comp);
  std::vector<uint64_t> back;
  size_t consumed = 0;
  ASSERT_TRUE(Simple8bCodec::Decompress(comp.span(), &consumed, &back).ok());
  EXPECT_EQ(consumed, comp.size());
  EXPECT_EQ(back, values);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, Simple8bRoundTrip,
                         ::testing::Range(0, 7));

TEST(Simple8bTest, ZerosPackDensely) {
  std::vector<uint64_t> zeros(2400, 0);
  Buffer comp;
  Simple8bCodec::Compress(zeros, &comp);
  // 2400 zeros = 10 words of 240 + header: far below one byte per value.
  EXPECT_LT(comp.size(), 120u);
}

TEST(TimestampCodecTest, FixedIntervalCompressesExtremely) {
  // The Gorilla §3.4 observation: fixed-interval timestamps have
  // delta-of-delta == 0 almost everywhere.
  std::vector<int64_t> ts(100000);
  for (size_t i = 0; i < ts.size(); ++i) {
    ts[i] = 1600000000000 + static_cast<int64_t>(i) * 1000;
  }
  Buffer comp;
  TimestampCodec::Compress(ts, &comp);
  double ratio = double(ts.size() * 8) / comp.size();
  EXPECT_GT(ratio, 100.0);
  std::vector<int64_t> back;
  size_t consumed = 0;
  ASSERT_TRUE(TimestampCodec::Decompress(comp.span(), &consumed, &back).ok());
  EXPECT_EQ(back, ts);
}

TEST(TimestampCodecTest, JitteredAndRandomRoundTrip) {
  Rng rng(53);
  std::vector<int64_t> jitter(5000), random(5000);
  int64_t t = 0;
  for (auto& v : jitter) {
    t += 1000 + static_cast<int64_t>(rng.UniformInt(7)) - 3;
    v = t;
  }
  for (auto& v : random) v = static_cast<int64_t>(rng.Next());
  for (const auto& ts : {jitter, random}) {
    Buffer comp;
    TimestampCodec::Compress(ts, &comp);
    std::vector<int64_t> back;
    size_t consumed = 0;
    ASSERT_TRUE(
        TimestampCodec::Decompress(comp.span(), &consumed, &back).ok());
    EXPECT_EQ(back, ts);
  }
}

// --- range coder -----------------------------------------------------------

TEST(RangeCoderTest, RoundTripUniformSymbols) {
  Rng rng(9);
  std::vector<int> syms(20000);
  for (auto& s : syms) s = static_cast<int>(rng.UniformInt(64));

  Buffer out;
  RangeEncoder enc(&out);
  AdaptiveModel em(64);
  for (int s : syms) EncodeAdaptive(&enc, &em, s);
  enc.Finish();

  RangeDecoder dec(out.span());
  AdaptiveModel dm(64);
  for (int s : syms) {
    ASSERT_EQ(DecodeAdaptive(&dec, &dm), s);
  }
  EXPECT_FALSE(dec.overrun());
}

TEST(RangeCoderTest, SkewedDistributionCompresses) {
  Rng rng(13);
  std::vector<int> syms(50000);
  for (auto& s : syms) {
    // ~90% zeros.
    s = (rng.UniformInt(10) == 0) ? static_cast<int>(rng.UniformInt(16)) : 0;
  }
  Buffer out;
  RangeEncoder enc(&out);
  AdaptiveModel em(16);
  for (int s : syms) EncodeAdaptive(&enc, &em, s);
  enc.Finish();
  // Entropy is well under 1 bit/symbol; require < 2 bits/symbol.
  EXPECT_LT(out.size() * 8, syms.size() * 2);

  RangeDecoder dec(out.span());
  AdaptiveModel dm(16);
  for (int s : syms) ASSERT_EQ(DecodeAdaptive(&dec, &dm), s);
}

TEST(RangeCoderTest, ManyModelsInterleaved) {
  // fpzip interleaves several context models through one coder.
  Rng rng(21);
  std::vector<std::pair<int, int>> stream;  // (context, symbol)
  for (int i = 0; i < 30000; ++i) {
    int ctx = static_cast<int>(rng.UniformInt(4));
    int sym = static_cast<int>(rng.UniformInt(8 + ctx));
    stream.push_back({ctx, sym});
  }
  Buffer out;
  {
    RangeEncoder enc(&out);
    std::vector<AdaptiveModel> models;
    for (int c = 0; c < 4; ++c) models.emplace_back(8 + c);
    for (auto [ctx, sym] : stream) EncodeAdaptive(&enc, &models[ctx], sym);
    enc.Finish();
  }
  {
    RangeDecoder dec(out.span());
    std::vector<AdaptiveModel> models;
    for (int c = 0; c < 4; ++c) models.emplace_back(8 + c);
    for (auto [ctx, sym] : stream) {
      ASSERT_EQ(DecodeAdaptive(&dec, &models[ctx]), sym);
    }
  }
}

// --- binary arithmetic coder ------------------------------------------------

TEST(ArithTest, RoundTripAdaptiveBits) {
  Rng rng(31);
  std::vector<int> bits(60000);
  for (auto& b : bits) b = (rng.UniformInt(100) < 80) ? 1 : 0;

  Buffer out;
  {
    BinaryArithEncoder enc(&out);
    BitModel model;
    for (int b : bits) {
      enc.Encode(b, model.p1());
      model.Update(b);
    }
    enc.Finish();
  }
  // 80/20 entropy ~= 0.72 bits/bit; allow 0.85.
  EXPECT_LT(out.size() * 8.0, bits.size() * 0.85);
  {
    BinaryArithDecoder dec(out.span());
    BitModel model;
    for (int b : bits) {
      int got = dec.Decode(model.p1());
      ASSERT_EQ(got, b);
      model.Update(got);
    }
  }
}

TEST(ArithTest, ExtremeProbabilitiesClamped) {
  Buffer out;
  BinaryArithEncoder enc(&out);
  // p1 = 0 and > 65535 must not break the coder (clamped internally).
  enc.Encode(1, 0);
  enc.Encode(0, 1 << 20);
  enc.Finish();
  BinaryArithDecoder dec(out.span());
  EXPECT_EQ(dec.Decode(0), 1);
  EXPECT_EQ(dec.Decode(1 << 20), 0);
}

TEST(BitModelTest, ConvergesTowardObservedBias) {
  BitModel m;
  for (int i = 0; i < 1000; ++i) m.Update(1);
  EXPECT_GT(m.p1(), 60000u);
  for (int i = 0; i < 1000; ++i) m.Update(0);
  EXPECT_LT(m.p1(), 5000u);
}

}  // namespace
}  // namespace fcbench::codecs
