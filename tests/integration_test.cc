// Integration sweep: every registered method round-trips every generated
// dataset (the full Table 4 grid at reduced scale), plus the Gorilla
// timestamp codec and cross-module pipelines.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>

#include "compressors/gorilla_timestamps.h"
#include "core/compressor.h"
#include "core/runner.h"
#include "data/dataset.h"
#include "db/dataframe.h"
#include "db/paged_file.h"
#include "util/rng.h"

namespace fcbench {
namespace {

constexpr uint64_t kScale = 192 << 10;  // small but multi-block scale

// ---------------------------------------------------------------------------
// Full methods x datasets grid

class GridRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(GridRoundTrip, CompressDecompressVerify) {
  auto [method, dataset] = GetParam();
  const data::DatasetInfo* info = data::FindDataset(dataset);
  ASSERT_NE(info, nullptr);
  auto ds = data::GenerateDataset(*info, kScale);
  ASSERT_TRUE(ds.ok());

  CompressorConfig cfg;
  cfg.threads = 2;
  auto create = CompressorRegistry::Global().Create(method, cfg);
  ASSERT_TRUE(create.ok());
  auto comp = std::move(create).TakeValue();

  const auto& traits = comp->traits();
  bool supported =
      (info->dtype == DType::kFloat32 && traits.supports_f32) ||
      (info->dtype == DType::kFloat64 && traits.supports_f64);

  Buffer compressed;
  Status st =
      comp->Compress(ds.value().bytes.span(), ds.value().desc, &compressed);
  if (!supported) {
    EXPECT_FALSE(st.ok());
    return;
  }
  ASSERT_TRUE(st.ok()) << st.ToString();

  Buffer restored;
  st = comp->Decompress(compressed.span(), ds.value().desc, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(restored.size(), ds.value().bytes.size());

  if (method == "buff" && info->precision_digits == 0) {
    // BUFF is lossy without a precision bound (§3.3); require bounded
    // error instead of bit-exactness.
    size_t esize = DTypeSize(info->dtype);
    size_t n = restored.size() / esize;
    for (size_t i = 0; i < n; i += 97) {
      double a, b;
      if (info->dtype == DType::kFloat32) {
        float fa, fb;
        std::memcpy(&fa, ds.value().bytes.data() + i * 4, 4);
        std::memcpy(&fb, restored.data() + i * 4, 4);
        a = fa;
        b = fb;
      } else {
        std::memcpy(&a, ds.value().bytes.data() + i * 8, 8);
        std::memcpy(&b, restored.data() + i * 8, 8);
      }
      EXPECT_NEAR(b, a, std::max(1e-9, std::abs(a) * 1e-9)) << dataset;
    }
    return;
  }
  EXPECT_EQ(std::memcmp(restored.data(), ds.value().bytes.data(),
                        restored.size()),
            0)
      << method << " on " << dataset;
}

std::vector<std::string> GridMethods() {
  // dzip_nn excluded from the full grid for runtime (covered separately).
  return {"pfpc",    "spdp",      "fpzip",     "bitshuffle_lz4",
          "bitshuffle_zstd", "ndzip_cpu", "buff", "gorilla",
          "chimp128", "gfc",      "mpc",       "nv_lz4",
          "nv_bitcomp", "ndzip_gpu"};
}

std::vector<std::string> GridDatasets() {
  std::vector<std::string> names;
  for (const auto& d : data::AllDatasets()) names.push_back(d.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Table4Grid, GridRoundTrip,
    ::testing::Combine(::testing::ValuesIn(GridMethods()),
                       ::testing::ValuesIn(GridDatasets())),
    [](const auto& param_info) {
      std::string name =
          std::get<0>(param_info.param) + "__" + std::get<1>(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Gorilla timestamp codec (§3.4 step (1))

TEST(GorillaTimestampTest, FixedIntervalCompressesToAlmostNothing) {
  std::vector<int64_t> ts;
  for (int i = 0; i < 100000; ++i) ts.push_back(1600000000 + 60ll * i);
  Buffer out;
  compressors::GorillaTimestampCodec::Compress(ts, &out);
  // One bit per timestamp after the header: ~12.5 KB for 100k stamps.
  EXPECT_LT(out.size(), ts.size() / 7);
  auto back = compressors::GorillaTimestampCodec::Decompress(out.span(),
                                                             ts.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ts);
}

TEST(GorillaTimestampTest, JitteredIntervals) {
  Rng rng(3);
  std::vector<int64_t> ts;
  int64_t t = 1700000000;
  for (int i = 0; i < 50000; ++i) {
    t += 30 + static_cast<int64_t>(rng.UniformInt(5)) - 2;  // 28..32s
    ts.push_back(t);
  }
  Buffer out;
  compressors::GorillaTimestampCodec::Compress(ts, &out);
  EXPECT_LT(out.size(), ts.size() * 2);  // ~9-10 bits/stamp
  auto back = compressors::GorillaTimestampCodec::Decompress(out.span(),
                                                             ts.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ts);
}

TEST(GorillaTimestampTest, IrregularAndBackwardJumps) {
  Rng rng(5);
  std::vector<int64_t> ts = {0};
  for (int i = 0; i < 10000; ++i) {
    ts.push_back(ts.back() + static_cast<int64_t>(rng.UniformInt(100000)) -
                 20000);
  }
  Buffer out;
  compressors::GorillaTimestampCodec::Compress(ts, &out);
  auto back = compressors::GorillaTimestampCodec::Decompress(out.span(),
                                                             ts.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ts);
}

TEST(GorillaTimestampTest, EmptyAndSingle) {
  for (size_t n : {size_t(0), size_t(1), size_t(2)}) {
    std::vector<int64_t> ts;
    for (size_t i = 0; i < n; ++i) ts.push_back(123456 + 7 * i);
    Buffer out;
    compressors::GorillaTimestampCodec::Compress(ts, &out);
    auto back =
        compressors::GorillaTimestampCodec::Decompress(out.span(), n);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), ts);
  }
}

TEST(GorillaTimestampTest, TruncatedStreamFails) {
  std::vector<int64_t> ts;
  for (int i = 0; i < 1000; ++i) ts.push_back(1000 + 60 * i + (i % 7));
  Buffer out;
  compressors::GorillaTimestampCodec::Compress(ts, &out);
  auto back = compressors::GorillaTimestampCodec::Decompress(
      out.span().subspan(0, out.size() / 2), ts.size());
  EXPECT_FALSE(back.ok());
}

// ---------------------------------------------------------------------------
// Cross-module pipeline: generate -> compress -> paged store -> dataframe

TEST(PipelineIntegrationTest, EveryDomainThroughTheDatabase) {
  for (const char* name : {"msg-bt", "citytemp", "hst-wfc3-ir",
                           "tpcxBB-store"}) {
    auto ds = data::GenerateDataset(*data::FindDataset(name), kScale);
    ASSERT_TRUE(ds.ok()) << name;
    std::string path =
        std::string(::testing::TempDir()) + "/fcb_integ_" + name;
    db::PagedFile::Options opt;
    opt.compressor = "bitshuffle_zstd";
    opt.page_size = 32 << 10;
    ASSERT_TRUE(db::PagedFile::Write(path, ds.value().bytes.span(),
                                     ds.value().desc, opt)
                    .ok())
        << name;
    db::PagedFile::ReadTiming timing;
    auto bytes = db::PagedFile::Read(path, &timing);
    ASSERT_TRUE(bytes.ok()) << name;
    EXPECT_EQ(std::memcmp(bytes.value().data(), ds.value().bytes.data(),
                          bytes.value().size()),
              0)
        << name;
    auto df = db::DataFrame::FromBytes(bytes.value().span(),
                                       ds.value().desc);
    ASSERT_TRUE(df.ok()) << name;
    EXPECT_GT(df.value().num_rows(), 0u);
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Runner end-to-end over a method subset (the Summarize/CrMatrix pipeline)

TEST(RunnerIntegrationTest, SweepSummarizeRank) {
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  opt.dataset_bytes = kScale;
  BenchmarkRunner runner(opt);
  std::vector<data::DatasetInfo> few = {
      *data::FindDataset("turbulence"), *data::FindDataset("citytemp"),
      *data::FindDataset("tpcDS-web")};
  auto results =
      runner.RunAll({"gorilla", "bitshuffle_lz4", "ndzip_cpu"}, few);
  EXPECT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.method << "/" << r.dataset << ": " << r.error;
    EXPECT_TRUE(r.round_trip_exact) << r.method << "/" << r.dataset;
  }
  auto summaries = Summarize(results);
  EXPECT_EQ(summaries.size(), 3u);
  auto matrix = CrMatrix(results, {"gorilla", "bitshuffle_lz4", "ndzip_cpu"},
                         {"turbulence", "citytemp", "tpcDS-web"});
  EXPECT_EQ(matrix.size(), 3u);
  EXPECT_EQ(matrix[0].size(), 3u);
}

}  // namespace
}  // namespace fcbench
