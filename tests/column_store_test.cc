// Tests for the multi-column store (src/db/column_store.h): per-column
// compression method choice, projection pushdown, manifest integrity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "db/column_store.h"
#include "db/query.h"
#include "util/fs.h"
#include "util/rng.h"

namespace fcbench::db {
namespace {

class ColumnStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = "/tmp/fcbench_colstore_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override { ColumnStore::Drop(prefix_); }

  std::vector<ColumnStore::ColumnSpec> MakeTable(size_t rows) {
    Rng rng(11);
    ColumnStore::ColumnSpec drift{
        .name = "temperature", .compressor = "gorilla",
        .dtype = DType::kFloat64};
    ColumnStore::ColumnSpec noisy{
        .name = "vibration", .compressor = "bitshuffle_zstd",
        .dtype = DType::kFloat32};
    ColumnStore::ColumnSpec ids{
        .name = "sensor_id", .compressor = "none",
        .dtype = DType::kFloat64};
    double level = 20.0;
    for (size_t r = 0; r < rows; ++r) {
      level += rng.Normal() * 0.01;
      drift.values.push_back(std::round(level * 1000.0) / 1000.0);
      noisy.values.push_back(
          static_cast<float>(rng.Normal()));  // f32-representable
      ids.values.push_back(static_cast<double>(r % 16));
    }
    return {drift, noisy, ids};
  }

  std::string prefix_;
};

TEST_F(ColumnStoreTest, WriteIsAtomicAndLeavesNoTempFiles) {
  auto cols = MakeTable(500);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  // Overwriting an existing store goes through the same temp+rename
  // publish and must land fully (old table or new, never torn).
  for (auto& c : cols) c.values.resize(200);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  auto df = ColumnStore::Read(prefix_, {});
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df.value().num_rows(), 200u);
  // No in-flight temp files survive a successful publish.
  const std::string base =
      prefix_.substr(prefix_.find_last_of('/') + 1);
  auto names = fs::ListDir(fs::DirOf(prefix_));
  ASSERT_TRUE(names.ok());
  for (const auto& n : names.value()) {
    if (n.compare(0, base.size(), base) == 0) {
      EXPECT_FALSE(fs::IsTempPath(n)) << n;
    }
  }
}

TEST_F(ColumnStoreTest, WriteReadRoundTrip) {
  auto cols = MakeTable(5000);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());

  auto names = ColumnStore::ListColumns(prefix_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(),
            (std::vector<std::string>{"temperature", "vibration",
                                      "sensor_id"}));

  auto df = ColumnStore::Read(prefix_);
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  ASSERT_EQ(df.value().num_columns(), 3u);
  ASSERT_EQ(df.value().num_rows(), 5000u);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t r = 0; r < 5000; r += 97) {
      EXPECT_DOUBLE_EQ(df.value().column(c)[r], cols[c].values[r])
          << "col " << c << " row " << r;
    }
  }
}

TEST_F(ColumnStoreTest, ProjectionReadsOnlyRequestedColumns) {
  auto cols = MakeTable(2000);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());

  ColumnStore::ReadStats all_stats, one_stats;
  auto all = ColumnStore::Read(prefix_, {}, &all_stats);
  auto one = ColumnStore::Read(prefix_, {"temperature"}, &one_stats);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().num_columns(), 1u);
  EXPECT_EQ(one.value().column_name(0), "temperature");
  // Projection pushdown: reading one column touches strictly fewer disk
  // bytes than reading all three.
  EXPECT_LT(one_stats.bytes_on_disk, all_stats.bytes_on_disk);
  EXPECT_LT(one_stats.bytes_decoded, all_stats.bytes_decoded);
}

TEST_F(ColumnStoreTest, ColumnOrderFollowsRequest) {
  auto cols = MakeTable(100);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  auto df = ColumnStore::Read(prefix_, {"sensor_id", "temperature"});
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df.value().column_name(0), "sensor_id");
  EXPECT_EQ(df.value().column_name(1), "temperature");
}

TEST_F(ColumnStoreTest, UnknownColumnRejected) {
  auto cols = MakeTable(100);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  auto df = ColumnStore::Read(prefix_, {"no_such_column"});
  EXPECT_FALSE(df.ok());
  EXPECT_EQ(df.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ColumnStoreTest, QueriesRunOnProjectedFrame) {
  auto cols = MakeTable(3000);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  auto df = ColumnStore::Read(prefix_, {"sensor_id"});
  ASSERT_TRUE(df.ok());
  auto sel = Filter(df.value(), ScanPredicate{.column = 0,
                                              .op = CompareOp::kEq,
                                              .value = 3.0});
  ASSERT_TRUE(sel.ok());
  // 3000 rows, ids cycle mod 16 -> ids 0..7 appear 188 times, 8..15 187.
  EXPECT_EQ(sel.value().size(), 188u);
}

TEST_F(ColumnStoreTest, ReadRowsMatchesFullReadEverywhere) {
  // Small pages so row ranges span page boundaries; "par-gorilla" routes
  // one column through the chunked container inside the paged file.
  auto cols = MakeTable(5000);
  cols[0].compressor = "par-gorilla";
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols, /*page_size=*/4096).ok());

  auto df = ColumnStore::Read(prefix_);
  ASSERT_TRUE(df.ok());

  // 4096-byte pages of f64 = 512 rows/page: cover within-page, cross-page,
  // exactly-on-boundary, first, last-partial, single-row, and empty.
  struct Range {
    uint64_t begin, count;
  };
  for (const auto& [begin, count] :
       {Range{0, 10}, Range{500, 24}, Range{512, 512}, Range{511, 2},
        Range{4990, 10}, Range{4999, 1}, Range{777, 0}}) {
    for (size_t c = 0; c < cols.size(); ++c) {
      auto rows = ColumnStore::ReadRows(prefix_, cols[c].name, begin, count);
      ASSERT_TRUE(rows.ok()) << cols[c].name << " [" << begin << ", +"
                             << count << "): " << rows.status().ToString();
      ASSERT_EQ(rows.value().size(), count);
      for (uint64_t r = 0; r < count; ++r) {
        EXPECT_DOUBLE_EQ(rows.value()[r], df.value().column(c)[begin + r])
            << cols[c].name << " row " << begin + r;
      }
    }
  }
}

TEST_F(ColumnStoreTest, ReadRowsPushdownDecodesOnlyTouchedPages) {
  auto cols = MakeTable(5000);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols, /*page_size=*/4096).ok());

  // A point read touches one 512-row page, not the whole 5000-row column;
  // bytes_decoded must reflect the honest page cost — more than the 8
  // returned bytes, far less than the column.
  ColumnStore::ReadStats stats;
  auto one = ColumnStore::ReadRows(prefix_, "temperature", 1234, 1, &stats);
  ASSERT_TRUE(one.ok());
  EXPECT_GE(stats.bytes_decoded, 4096u);
  EXPECT_LE(stats.bytes_decoded, 2 * 4096u);
}

TEST_F(ColumnStoreTest, ReadRowsRejectsBadRequests) {
  auto cols = MakeTable(100);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  EXPECT_FALSE(ColumnStore::ReadRows(prefix_, "no_such", 0, 1).ok());
  EXPECT_FALSE(ColumnStore::ReadRows(prefix_, "temperature", 95, 10).ok());
  EXPECT_FALSE(ColumnStore::ReadRows(prefix_, "temperature", 101, 1).ok());
}

TEST_F(ColumnStoreTest, RaggedColumnsRejected) {
  auto cols = MakeTable(100);
  cols[1].values.pop_back();
  EXPECT_FALSE(ColumnStore::Write(prefix_, cols).ok());
}

TEST_F(ColumnStoreTest, CorruptManifestDetected) {
  auto cols = MakeTable(100);
  ASSERT_TRUE(ColumnStore::Write(prefix_, cols).ok());
  // Flip one byte of the manifest: checksum must catch it.
  std::string path = prefix_ + ".manifest";
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 6, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 6, SEEK_SET);
  std::fputc(c ^ 0x20, f);
  std::fclose(f);
  auto df = ColumnStore::Read(prefix_);
  EXPECT_FALSE(df.ok());
  EXPECT_EQ(df.status().code(), StatusCode::kCorruption);
}

TEST_F(ColumnStoreTest, MissingStoreReportsIoError) {
  auto df = ColumnStore::Read("/tmp/fcbench_no_such_store");
  EXPECT_FALSE(df.ok());
  EXPECT_EQ(df.status().code(), StatusCode::kIoError);
}

TEST(DataFrameFromColumnsTest, Validation) {
  auto ok = DataFrame::FromColumns({"a", "b"}, {{1, 2}, {3, 4}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_rows(), 2u);
  EXPECT_FALSE(DataFrame::FromColumns({"a"}, {{1}, {2}}).ok());
  EXPECT_FALSE(DataFrame::FromColumns({"a", "b"}, {{1, 2}, {3}}).ok());
}

}  // namespace
}  // namespace fcbench::db
