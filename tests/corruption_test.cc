// Failure-injection suite: every registered method's decoder is fed
// truncated and bit-flipped streams. A production database codec must
// never crash, hang, or write out of bounds on hostile input — at worst
// it returns an error Status or (for headerless bit codecs) wrong data of
// a bounded size. These tests are the memory-safety contract; run them
// under ASan/UBSan for the full guarantee.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "test_names.h"
#include "util/rng.h"

namespace fcbench {
namespace {

// dzip_nn retrains its model per call (~KB/s, paper §4.5); keep its
// corpus tiny so the fuzz sweep stays fast.
size_t ElementsFor(const std::string& method) {
  return method == "dzip_nn" ? 256 : 4096;
}

std::vector<uint8_t> SmoothData(DType dtype, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(count * DTypeSize(dtype));
  double x = 100.0;
  for (size_t i = 0; i < count; ++i) {
    x += rng.Normal();
    if (dtype == DType::kFloat32) {
      float f = static_cast<float>(x);
      std::memcpy(&bytes[i * 4], &f, 4);
    } else {
      std::memcpy(&bytes[i * 8], &x, 8);
    }
  }
  return bytes;
}

class CorruptionResilience
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    RegisterAllCompressors();
    method_ = GetParam();
    CompressorConfig cfg;
    cfg.threads = 2;
    auto r = CompressorRegistry::Global().Create(method_, cfg);
    ASSERT_TRUE(r.ok());
    comp_ = r.TakeValue();

    desc_.dtype = comp_->traits().supports_f64 ? DType::kFloat64
                                               : DType::kFloat32;
    const size_t count = ElementsFor(method_);
    desc_.extent = {count};
    desc_.precision_digits = 4;
    input_ = SmoothData(desc_.dtype, count, 99);
    ASSERT_TRUE(comp_->Compress(ByteSpan(input_.data(), input_.size()),
                                desc_, &stream_)
                    .ok());
    ASSERT_GT(stream_.size(), 0u);
  }

  // A decode of hostile input may fail or may "succeed" with garbage; it
  // must not produce unboundedly more data than the descriptor promises.
  void ExpectBoundedDecode(ByteSpan hostile) {
    Buffer out;
    Status st = comp_->Decompress(hostile, desc_, &out);
    if (st.ok()) {
      EXPECT_LE(out.size(), input_.size() * 2 + 4096)
          << method_ << ": decoder produced unbounded output";
    }
  }

  std::string method_;
  std::unique_ptr<Compressor> comp_;
  DataDesc desc_;
  std::vector<uint8_t> input_;
  Buffer stream_;
};

TEST_P(CorruptionResilience, TruncationSweep) {
  // Every prefix length in a coarse sweep, plus the boundary cases.
  std::vector<size_t> lengths = {0, 1, 2, 3};
  for (size_t len = 4; len < stream_.size(); len += stream_.size() / 37 + 1) {
    lengths.push_back(len);
  }
  if (stream_.size() > 1) lengths.push_back(stream_.size() - 1);
  for (size_t len : lengths) {
    ExpectBoundedDecode(stream_.span().subspan(0, len));
  }
}

TEST_P(CorruptionResilience, BitFlipSweep) {
  for (size_t victim = 0; victim < stream_.size();
       victim += stream_.size() / 101 + 1) {
    for (uint8_t mask : {uint8_t(0x01), uint8_t(0x80), uint8_t(0xff)}) {
      Buffer copy = Buffer::FromSpan(stream_.span());
      copy.data()[victim] ^= mask;
      ExpectBoundedDecode(copy.span());
    }
  }
}

TEST_P(CorruptionResilience, RandomGarbage) {
  Rng rng(777);
  for (size_t size : {size_t(1), size_t(17), size_t(1024), size_t(65536)}) {
    Buffer garbage(size);
    for (size_t i = 0; i < size; ++i) {
      garbage.data()[i] = static_cast<uint8_t>(rng.Next());
    }
    ExpectBoundedDecode(garbage.span());
  }
}

TEST_P(CorruptionResilience, HeaderByteSweep) {
  // Headers carry counts/sizes; flip each of the first 32 bytes
  // individually through all-ones to attack length fields directly.
  const size_t header_span = std::min<size_t>(stream_.size(), 32);
  for (size_t victim = 0; victim < header_span; ++victim) {
    Buffer copy = Buffer::FromSpan(stream_.span());
    copy.data()[victim] = 0xff;
    ExpectBoundedDecode(copy.span());
    copy.data()[victim] = 0x00;
    ExpectBoundedDecode(copy.span());
  }
}

TEST_P(CorruptionResilience, VarintFloodHeader) {
  // 0xff runs make LEB128 length fields decode to astronomically large
  // values — the classic allocation-DoS attack on length-prefixed
  // formats. Decoders must reject before allocating.
  for (size_t k = 1; k <= 10 && k < stream_.size(); ++k) {
    Buffer copy = Buffer::FromSpan(stream_.span());
    for (size_t i = 0; i < k; ++i) copy.data()[i] = 0xff;
    ExpectBoundedDecode(copy.span());
  }
}

TEST_P(CorruptionResilience, EmptyInput) {
  Buffer empty;
  ExpectBoundedDecode(empty.span());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CorruptionResilience,
    ::testing::ValuesIn([] {
      RegisterAllCompressors();
      return CompressorRegistry::Global().Names();
    }()),
    [](const auto& param_info) { return SanitizeTestName(param_info.param); });

}  // namespace
}  // namespace fcbench
