// Failure-injection suite: every registered method's decoder is fed
// truncated and bit-flipped streams. A production database codec must
// never crash, hang, or write out of bounds on hostile input — at worst
// it returns an error Status or (for headerless bit codecs) wrong data of
// a bounded size. These tests are the memory-safety contract; run them
// under ASan/UBSan for the full guarantee.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "core/compressor.h"
#include "db/paged_file.h"
#include "test_names.h"
#include "util/bitio.h"
#include "util/fs.h"
#include "util/hash.h"
#include "util/rng.h"

namespace fcbench {
namespace {

// dzip_nn retrains its model per call (~KB/s, paper §4.5); keep its
// corpus tiny so the fuzz sweep stays fast.
size_t ElementsFor(const std::string& method) {
  return method == "dzip_nn" ? 256 : 4096;
}

std::vector<uint8_t> SmoothData(DType dtype, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(count * DTypeSize(dtype));
  double x = 100.0;
  for (size_t i = 0; i < count; ++i) {
    x += rng.Normal();
    if (dtype == DType::kFloat32) {
      float f = static_cast<float>(x);
      std::memcpy(&bytes[i * 4], &f, 4);
    } else {
      std::memcpy(&bytes[i * 8], &x, 8);
    }
  }
  return bytes;
}

class CorruptionResilience
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    RegisterAllCompressors();
    method_ = GetParam();
    CompressorConfig cfg;
    cfg.threads = 2;
    auto r = CompressorRegistry::Global().Create(method_, cfg);
    ASSERT_TRUE(r.ok());
    comp_ = r.TakeValue();

    desc_.dtype = comp_->traits().supports_f64 ? DType::kFloat64
                                               : DType::kFloat32;
    const size_t count = ElementsFor(method_);
    desc_.extent = {count};
    desc_.precision_digits = 4;
    input_ = SmoothData(desc_.dtype, count, 99);
    ASSERT_TRUE(comp_->Compress(ByteSpan(input_.data(), input_.size()),
                                desc_, &stream_)
                    .ok());
    ASSERT_GT(stream_.size(), 0u);
  }

  // A decode of hostile input may fail or may "succeed" with garbage; it
  // must not produce unboundedly more data than the descriptor promises.
  void ExpectBoundedDecode(ByteSpan hostile) {
    Buffer out;
    Status st = comp_->Decompress(hostile, desc_, &out);
    if (st.ok()) {
      EXPECT_LE(out.size(), input_.size() * 2 + 4096)
          << method_ << ": decoder produced unbounded output";
    }
  }

  std::string method_;
  std::unique_ptr<Compressor> comp_;
  DataDesc desc_;
  std::vector<uint8_t> input_;
  Buffer stream_;
};

TEST_P(CorruptionResilience, TruncationSweep) {
  // Every prefix length in a coarse sweep, plus the boundary cases.
  std::vector<size_t> lengths = {0, 1, 2, 3};
  for (size_t len = 4; len < stream_.size(); len += stream_.size() / 37 + 1) {
    lengths.push_back(len);
  }
  if (stream_.size() > 1) lengths.push_back(stream_.size() - 1);
  for (size_t len : lengths) {
    ExpectBoundedDecode(stream_.span().subspan(0, len));
  }
}

TEST_P(CorruptionResilience, BitFlipSweep) {
  for (size_t victim = 0; victim < stream_.size();
       victim += stream_.size() / 101 + 1) {
    for (uint8_t mask : {uint8_t(0x01), uint8_t(0x80), uint8_t(0xff)}) {
      Buffer copy = Buffer::FromSpan(stream_.span());
      copy.data()[victim] ^= mask;
      ExpectBoundedDecode(copy.span());
    }
  }
}

TEST_P(CorruptionResilience, RandomGarbage) {
  Rng rng(777);
  for (size_t size : {size_t(1), size_t(17), size_t(1024), size_t(65536)}) {
    Buffer garbage(size);
    for (size_t i = 0; i < size; ++i) {
      garbage.data()[i] = static_cast<uint8_t>(rng.Next());
    }
    ExpectBoundedDecode(garbage.span());
  }
}

TEST_P(CorruptionResilience, HeaderByteSweep) {
  // Headers carry counts/sizes; flip each of the first 32 bytes
  // individually through all-ones to attack length fields directly.
  const size_t header_span = std::min<size_t>(stream_.size(), 32);
  for (size_t victim = 0; victim < header_span; ++victim) {
    Buffer copy = Buffer::FromSpan(stream_.span());
    copy.data()[victim] = 0xff;
    ExpectBoundedDecode(copy.span());
    copy.data()[victim] = 0x00;
    ExpectBoundedDecode(copy.span());
  }
}

TEST_P(CorruptionResilience, VarintFloodHeader) {
  // 0xff runs make LEB128 length fields decode to astronomically large
  // values — the classic allocation-DoS attack on length-prefixed
  // formats. Decoders must reject before allocating.
  for (size_t k = 1; k <= 10 && k < stream_.size(); ++k) {
    Buffer copy = Buffer::FromSpan(stream_.span());
    for (size_t i = 0; i < k; ++i) copy.data()[i] = 0xff;
    ExpectBoundedDecode(copy.span());
  }
}

TEST_P(CorruptionResilience, EmptyInput) {
  Buffer empty;
  ExpectBoundedDecode(empty.span());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CorruptionResilience,
    ::testing::ValuesIn([] {
      RegisterAllCompressors();
      return CompressorRegistry::Global().Names();
    }()),
    [](const auto& param_info) { return SanitizeTestName(param_info.param); });

// --- mixed-method (FCPK v2) frames ------------------------------------------
//
// The auto selectors ride the generic sweep above; these tests attack
// what is new in version 2 — the method table and per-chunk method ids —
// with *valid checksums*, so the directory checksum cannot mask the
// specific validation under test. A hostile but checksum-correct mixed
// frame must still decode to a clean Status, never a crash.

/// Builds an FCPK v2 header+directory byte-for-byte (bypassing the
/// writer's own validation) with a correct trailing checksum, followed
/// by `payload`.
Buffer CraftMixedFrame(uint64_t raw_bytes, uint64_t chunk_raw_bytes,
                       const std::vector<std::string>& methods,
                       const std::vector<uint64_t>& method_ids,
                       const std::vector<uint64_t>& payload_sizes,
                       ByteSpan payload) {
  Buffer header;
  PutFixed(&header, ChunkedCompressor::kMagic);
  PutVarint64(&header, ChunkedCompressor::kVersionMixed);
  PutVarint64(&header, raw_bytes);
  PutVarint64(&header, chunk_raw_bytes);
  PutVarint64(&header, methods.size());
  for (const auto& m : methods) {
    PutVarint64(&header, m.size());
    header.Append(m.data(), m.size());
  }
  PutVarint64(&header, payload_sizes.size());
  for (uint64_t id : method_ids) PutVarint64(&header, id);
  for (uint64_t s : payload_sizes) PutVarint64(&header, s);
  PutFixed(&header, XxHash64(header.span()));
  header.Append(payload);
  return header;
}

class MixedFrameCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterAllCompressors();
    desc_.dtype = DType::kFloat64;
    desc_.extent = {1024};
    input_ = SmoothData(DType::kFloat64, 1024, 7);
    CompressorConfig cfg;
    cfg.chunk_bytes = 2048;  // 4 chunks of 256 f64 elements
    auto_ = CompressorRegistry::Global().Create("auto", cfg).TakeValue();
    ASSERT_TRUE(auto_
                    ->Compress(ByteSpan(input_.data(), input_.size()), desc_,
                               &frame_)
                    .ok());
    auto idx = ChunkedCompressor::ReadIndex(frame_.span());
    ASSERT_TRUE(idx.ok());
    idx_ = idx.TakeValue();
    ASSERT_EQ(idx_.num_chunks(), 4u);
    ASSERT_GE(idx_.methods.size(), 1u);
  }

  /// Valid payload slices from the real frame, so only the directory
  /// field under test is hostile.
  std::vector<uint64_t> RealPayloadSizes() const {
    return idx_.payload_sizes;
  }
  ByteSpan RealPayload() const {
    return frame_.span().subspan(idx_.payload_offsets[0]);
  }

  DataDesc desc_;
  std::vector<uint8_t> input_;
  std::unique_ptr<Compressor> auto_;
  Buffer frame_;
  ChunkedCompressor::Index idx_;
};

TEST_F(MixedFrameCorruption, OutOfRangeMethodIdRejectedCleanly) {
  // Chunk 2 claims method id 9 with only |methods| entries; checksum is
  // valid, so only the id validation can catch it.
  std::vector<uint64_t> ids(idx_.method_ids.begin(), idx_.method_ids.end());
  ids[2] = 9;
  Buffer evil = CraftMixedFrame(input_.size(), idx_.chunk_raw_bytes,
                                idx_.methods, ids, RealPayloadSizes(),
                                RealPayload());
  auto parsed = ChunkedCompressor::ReadIndex(evil.span());
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
  Buffer out;
  Status st = auto_->Decompress(evil.span(), desc_, &out);
  EXPECT_FALSE(st.ok());
}

TEST_F(MixedFrameCorruption, AdapterNamesInMethodTableRejected) {
  // par-*/auto* names inside the table would let a hostile frame nest
  // decoders; both must be rejected at parse time.
  for (const char* adapter : {"par-gorilla", "auto", "auto-ratio"}) {
    std::vector<uint64_t> ids(idx_.method_ids.size(), 0);
    Buffer evil = CraftMixedFrame(input_.size(), idx_.chunk_raw_bytes,
                                  {adapter}, ids, RealPayloadSizes(),
                                  RealPayload());
    Buffer out;
    Status st = auto_->Decompress(evil.span(), desc_, &out);
    EXPECT_FALSE(st.ok()) << adapter;
  }
}

TEST_F(MixedFrameCorruption, UnknownMethodNameFailsAtDecode) {
  // Structurally plausible but unregistered method name: the parse may
  // accept it, but decoding must surface a clean error.
  std::vector<uint64_t> ids(idx_.method_ids.size(), 0);
  Buffer evil = CraftMixedFrame(input_.size(), idx_.chunk_raw_bytes,
                                {"zpaq9000"}, ids, RealPayloadSizes(),
                                RealPayload());
  Buffer out;
  Status st = auto_->Decompress(evil.span(), desc_, &out);
  EXPECT_FALSE(st.ok());
}

TEST_F(MixedFrameCorruption, OversizedMethodTableRejected) {
  std::vector<std::string> methods(ChunkedCompressor::kMaxMethods + 1,
                                   "gorilla");
  std::vector<uint64_t> ids(idx_.method_ids.size(), 0);
  Buffer evil = CraftMixedFrame(input_.size(), idx_.chunk_raw_bytes,
                                methods, ids, RealPayloadSizes(),
                                RealPayload());
  EXPECT_FALSE(ChunkedCompressor::ReadIndex(evil.span()).ok());
}

TEST_F(MixedFrameCorruption, MethodIdByteFlipsCaughtByChecksum) {
  // Every byte of the genuine header+directory (which includes the
  // method table and ids) is checksummed: any flip must fail cleanly.
  const size_t dir_end = idx_.payload_offsets[0];
  for (size_t victim = 0; victim < dir_end; ++victim) {
    Buffer copy = Buffer::FromSpan(frame_.span());
    copy.data()[victim] ^= 0x04;
    Buffer out;
    Status st = auto_->Decompress(copy.span(), desc_, &out);
    EXPECT_FALSE(st.ok()) << "flip at byte " << victim;
  }
}

TEST_F(MixedFrameCorruption, TruncatedMixedFramesFailCleanly) {
  // Truncations across the whole frame — inside the method table, the
  // id list, the checksum, and the payloads — must all error.
  for (size_t keep = 0; keep < frame_.size();
       keep += frame_.size() / 97 + 1) {
    Buffer out;
    Status st =
        auto_->Decompress(frame_.span().subspan(0, keep), desc_, &out);
    EXPECT_FALSE(st.ok()) << "truncated to " << keep << " bytes";
  }
}

// ---------------------------------------------------------------------------
// PagedFile hostile headers: every length field read from a container
// header is attacker-controlled. Each test below encodes one overflow or
// inconsistency that must surface as a Corruption status — never as an
// out-of-bounds read (the ASan lane enforces that half of the contract),
// a giant allocation, or a wrapped bounds check that lets the decode
// loops run wild.
// ---------------------------------------------------------------------------

class PagedFileHostileHeader : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterAllCompressors();
    path_ = "/tmp/fcbench_pf_hostile_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override { fs::RemoveFile(path_); }

  void ExpectRejected(const Buffer& bytes, const char* what) {
    ASSERT_TRUE(
        fs::WriteFileAtomic(path_, bytes.span(), /*durable=*/false).ok());
    auto r = db::PagedFile::Read(path_, nullptr);
    ASSERT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << what;
  }

  /// Valid header prefix: magic | compressor "none" | page | dtype f64 |
  /// full precision. Tests append the hostile fields after it.
  static Buffer Prefix(uint64_t page) {
    Buffer b;
    PutFixed(&b, uint32_t{0x46434246});  // "FCBF"
    PutVarint64(&b, 4);
    b.Append("none", 4);
    PutVarint64(&b, page);
    b.PushBack(1);
    b.PushBack(0);
    return b;
  }

  std::string path_;
};

TEST_F(PagedFileHostileHeader, HostileCompressorNameLength) {
  // A 64-bit name length near SIZE_MAX: `off + len` wraps, so a naive
  // `off + len > size` bounds check passes and .assign() reads out of
  // bounds. The parser must compare overflow-safely.
  Buffer b;
  PutFixed(&b, uint32_t{0x46434246});
  PutVarint64(&b, ~uint64_t{0});
  ExpectRejected(b, "hostile name length");
}

TEST_F(PagedFileHostileHeader, OversizedPageRejected) {
  Buffer b = Prefix(uint64_t{1} << 33);  // above the 2 GiB page cap
  PutVarint64(&b, 1);                    // rank
  PutVarint64(&b, 8);                    // extent
  ExpectRejected(b, "oversized page");
}

TEST_F(PagedFileHostileHeader, ExtentProductOverflow) {
  Buffer b = Prefix(4096);
  PutVarint64(&b, 2);  // rank 2: the element product overflows u64
  PutVarint64(&b, uint64_t{1} << 33);
  PutVarint64(&b, uint64_t{1} << 33);
  ExpectRejected(b, "extent product overflow");
}

TEST_F(PagedFileHostileHeader, ImplausibleTotalSize) {
  Buffer b = Prefix(4096);
  PutVarint64(&b, 1);
  PutVarint64(&b, uint64_t{1} << 50);  // 2^53 bytes: over the 2^46 cap
  ExpectRejected(b, "implausible total size");
}

TEST_F(PagedFileHostileHeader, PageCountMismatch) {
  Buffer b = Prefix(4096);
  PutVarint64(&b, 1);
  PutVarint64(&b, 1024);  // 8 KiB of f64 => exactly 2 pages
  PutVarint64(&b, 3);     // header claims 3
  ExpectRejected(b, "page count mismatch");
}

TEST_F(PagedFileHostileHeader, PageDirectorySumOverflow) {
  Buffer b = Prefix(4096);
  PutVarint64(&b, 1);
  PutVarint64(&b, 1024);
  PutVarint64(&b, 2);
  PutVarint64(&b, ~uint64_t{0});  // directory entries sum past 2^64
  PutVarint64(&b, 2);
  ExpectRejected(b, "page directory sum overflow");
}

TEST_F(PagedFileHostileHeader, TruncatedPages) {
  Buffer b = Prefix(4096);
  PutVarint64(&b, 1);
  PutVarint64(&b, 1024);
  PutVarint64(&b, 2);
  PutVarint64(&b, 64);  // directory promises 96 payload bytes...
  PutVarint64(&b, 32);
  b.Append(std::vector<uint8_t>(5, 0xab).data(), 5);  // ...file has 5
  ExpectRejected(b, "truncated pages");
}

}  // namespace
}  // namespace fcbench
