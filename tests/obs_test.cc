// Tests for the observability subsystem (src/obs/): metric primitives
// under concurrency, histogram bucket math and snapshot algebra, the
// registry's conflict detection and self-check, the exposition formats,
// and the EventTrace ring's wraparound and seqlock behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace fcbench::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

TEST(Counter, StartsAtZeroAndAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  // Torture: sharded cells must never lose an increment, whatever the
  // interleaving. 8 threads x 100k.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, SnapshotConcurrentWithWriters) {
  // value() must be safe (and monotone) while writers are mid-Add.
  Counter c;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.Add(1);
    });
  }
  uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = c.value();
    EXPECT_GE(now, prev);
    prev = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

TEST(Counter, DisabledCollectionDropsAdds) {
  Counter c;
  SetEnabled(false);
  c.Add(100);
  SetEnabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.Add(1);
  EXPECT_EQ(c.value(), 1u);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

TEST(Gauge, SetAddAndNegativeValues) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
}

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // bucket = bit_width(v): 0 -> 0, 1 -> 1, [2,3] -> 2, [4,7] -> 3, ...
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(7), 3u);
  EXPECT_EQ(Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);

  // Every value lands in the bucket whose range contains it.
  for (uint64_t v : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
    const size_t b = Histogram::BucketOf(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1));
    }
  }
}

TEST(Histogram, RecordCountSumMaxPercentiles) {
  Histogram h(Unit::kNanos);
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  HistogramSnapshot s = h.SnapshotNow();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001u / 2);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Percentiles are bucket upper bounds: conservative (>= the true
  // value) and monotone in p.
  EXPECT_GE(s.p50(), 500.0);
  EXPECT_LE(s.p50(), 1023.0);
  EXPECT_LE(s.p50(), s.p90());
  EXPECT_LE(s.p90(), s.p99());
  EXPECT_LE(s.p99(), static_cast<double>(s.max));
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  Histogram h(Unit::kBytes);
  EXPECT_EQ(h.SnapshotNow().Percentile(99), 0.0);
}

TEST(Histogram, PercentileClampedByObservedMax) {
  // A single sample of 5 sits in bucket [4,7]; the reported p99 must be
  // the observed max (5), not the bucket edge (7).
  Histogram h(Unit::kNanos);
  h.Record(5);
  EXPECT_DOUBLE_EQ(h.SnapshotNow().p99(), 5.0);
}

TEST(Histogram, MergeAddsAndDeltaSubtracts) {
  Histogram h(Unit::kBytes);
  h.Record(10);
  h.Record(100);
  HistogramSnapshot early = h.SnapshotNow();
  h.Record(1000);
  h.Record(10000);
  HistogramSnapshot late = h.SnapshotNow();

  HistogramSnapshot delta = late.Delta(early);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 11000u);
  // The two new samples live in buckets bit_width(1000)=10 and
  // bit_width(10000)=14.
  EXPECT_EQ(delta.buckets[10], 1u);
  EXPECT_EQ(delta.buckets[14], 1u);
  EXPECT_EQ(delta.buckets[4], 0u);  // 10's bucket subtracted away

  HistogramSnapshot merged = early;
  merged.Merge(delta);
  EXPECT_EQ(merged.count, late.count);
  EXPECT_EQ(merged.sum, late.sum);
  for (size_t b = 0; b < merged.buckets.size(); ++b) {
    EXPECT_EQ(merged.buckets[b], late.buckets[b]) << "bucket " << b;
  }
}

TEST(Histogram, ConcurrentRecordWithSnapshots) {
  // Writers record while a reader snapshots; every snapshot must be
  // internally sane and the final tallies exact.
  Histogram h(Unit::kNanos);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot s = h.SnapshotNow();
    EXPECT_LE(s.max, static_cast<uint64_t>(kPerThread));
    EXPECT_GE(s.Percentile(100), 0.0);
  }
  for (auto& t : writers) t.join();
  HistogramSnapshot s = h.SnapshotNow();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kPerThread));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test.counter");
  Counter* b = reg.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(reg.SelfCheck().ok());
}

TEST(MetricsRegistry, ValidNameGrammar) {
  EXPECT_TRUE(MetricsRegistry::ValidName("wal.commit_nanos"));
  EXPECT_TRUE(MetricsRegistry::ValidName("a.b.c_9"));
  EXPECT_FALSE(MetricsRegistry::ValidName(""));
  EXPECT_FALSE(MetricsRegistry::ValidName("nodots"));
  EXPECT_FALSE(MetricsRegistry::ValidName("Upper.case"));
  EXPECT_FALSE(MetricsRegistry::ValidName("tra-iling.dash"));
  EXPECT_FALSE(MetricsRegistry::ValidName(".leading.dot"));
  EXPECT_FALSE(MetricsRegistry::ValidName("trailing.dot."));
  EXPECT_FALSE(MetricsRegistry::ValidName("dou..ble"));
  EXPECT_FALSE(MetricsRegistry::ValidName(std::string(200, 'a') + ".b"));
}

TEST(MetricsRegistry, KindConflictIsRecordedButUsable) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.conflicted");
  Gauge* g = reg.GetGauge("test.conflicted");  // same name, other kind
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);  // orphan metric: still safe to write through
  g->Set(7);
  const Status st = reg.SelfCheck();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("test.conflicted"), std::string::npos);
  // The conflicting gauge is NOT in snapshots (it was never registered).
  EXPECT_EQ(reg.Snapshot().FindGauge("test.conflicted"), nullptr);
}

TEST(MetricsRegistry, HistogramUnitConflictIsRecorded) {
  MetricsRegistry reg;
  Histogram* a = reg.GetHistogram("test.hist", Unit::kNanos);
  Histogram* b = reg.GetHistogram("test.hist", Unit::kBytes);
  EXPECT_EQ(a, b);  // first registration wins, same pointer
  EXPECT_EQ(b->unit(), Unit::kNanos);
  EXPECT_FALSE(reg.SelfCheck().ok());
}

TEST(MetricsRegistry, BadNameIsRecorded) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("Bad Name!");
  ASSERT_NE(c, nullptr);
  c->Increment();  // still usable
  EXPECT_FALSE(reg.SelfCheck().ok());
}

TEST(MetricsRegistry, GlobalSelfCheckPasses) {
  // The naming-convention / duplicate-registration assertion the unit
  // lane runs: every call site in the tree must register well-formed,
  // kind-consistent names. Touch a few real ones first.
  MetricsRegistry::Global().GetCounter("wal.commits")->Add(0);
  MetricsRegistry::Global()
      .GetHistogram("lsm.append_nanos", Unit::kNanos)
      ->Record(0);
  EXPECT_TRUE(MetricsRegistry::Global().SelfCheck().ok())
      << MetricsRegistry::Global().SelfCheck().message();
}

TEST(MetricsRegistry, SnapshotIsAlphabeticalAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("test.b")->Add(2);
  reg.GetCounter("test.a")->Add(1);
  reg.GetGauge("test.g")->Set(-3);
  reg.GetHistogram("test.h", Unit::kBytes)->Record(512);
  MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "test.a");
  EXPECT_EQ(s.counters[1].name, "test.b");
  ASSERT_NE(s.FindCounter("test.b"), nullptr);
  EXPECT_EQ(s.FindCounter("test.b")->value, 2u);
  ASSERT_NE(s.FindGauge("test.g"), nullptr);
  EXPECT_EQ(s.FindGauge("test.g")->value, -3);
  ASSERT_NE(s.FindHistogram("test.h"), nullptr);
  EXPECT_EQ(s.FindHistogram("test.h")->count, 1u);
}

TEST(MetricsRegistry, ConcurrentGetAndSnapshot) {
  // Registration, writes and snapshots race; pointers must stay stable
  // and nothing may crash or deadlock.
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string name = "test.c" + std::to_string(t % 2);
      for (int i = 0; i < 20000; ++i) reg.GetCounter(name)->Increment();
    });
  }
  threads.emplace_back([&reg, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)reg.Snapshot();
    }
  });
  for (size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();
  MetricsSnapshot s = reg.Snapshot();
  uint64_t total = 0;
  for (const auto& c : s.counters) total += c.value;
  EXPECT_EQ(total, 4u * 20000u);
}

// ---------------------------------------------------------------------------
// Exposition formats
// ---------------------------------------------------------------------------

TEST(Exposition, JsonContainsAllKindsAndEscapes) {
  MetricsRegistry reg;
  reg.GetCounter("test.requests")->Add(3);
  reg.GetGauge("test.depth")->Set(5);
  reg.GetHistogram("test.lat", Unit::kNanos)->Record(100);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"test.requests\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.depth\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"unit\": \"nanos\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

TEST(Exposition, PrometheusFormat) {
  MetricsRegistry reg;
  reg.GetCounter("test.requests")->Add(3);
  reg.GetGauge("test.depth")->Set(-2);
  Histogram* h = reg.GetHistogram("test.lat", Unit::kNanos);
  h->Record(5);   // bucket le=7
  h->Record(100); // bucket le=127
  const std::string prom = reg.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("# TYPE fcbench_test_requests counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("fcbench_test_requests 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE fcbench_test_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("fcbench_test_depth -2"), std::string::npos);
  // Cumulative buckets: le="7" holds 1, le="127" holds 2, +Inf holds 2.
  EXPECT_NE(prom.find("fcbench_test_lat_bucket{le=\"7\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("fcbench_test_lat_bucket{le=\"127\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("fcbench_test_lat_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("fcbench_test_lat_sum 105"), std::string::npos);
  EXPECT_NE(prom.find("fcbench_test_lat_count 2"), std::string::npos);
}

TEST(Exposition, TextSmoke) {
  MetricsRegistry reg;
  reg.GetCounter("test.requests")->Add(1);
  const std::string text = reg.Snapshot().ToText();
  EXPECT_NE(text.find("test.requests = 1"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// EventTrace
// ---------------------------------------------------------------------------

TEST(EventTrace, RecordsInOrderWithPayload) {
  EventTrace trace(16);
  trace.Record(EventKind::kFlushStart, "dir-a", 1, 100);
  trace.Record(EventKind::kFlushPublish, "dir-a", 1, 42);
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kFlushStart);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 100u);
  EXPECT_STREQ(events[0].detail, "dir-a");
  EXPECT_EQ(events[1].kind, EventKind::kFlushPublish);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_LE(events[0].nanos, events[1].nanos);
}

TEST(EventTrace, WraparoundKeepsOnlyTheTail) {
  EventTrace trace(8);  // minimum capacity
  ASSERT_EQ(trace.capacity(), 8u);
  for (uint64_t i = 1; i <= 20; ++i) {
    trace.Record(EventKind::kCompact, "d", i, 0);
  }
  EXPECT_EQ(trace.recorded(), 20u);
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is exactly the last capacity() events, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].a, 13 + i);
  }
}

TEST(EventTrace, DetailIsTruncatedNotOverflowed) {
  EventTrace trace(8);
  const std::string longdetail(200, 'x');
  trace.Record(EventKind::kDegraded, longdetail, 0, 0);
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail),
            std::string(EventTrace::kDetailBytes - 1, 'x'));
}

TEST(EventTrace, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventTrace(1).capacity(), 8u);
  EXPECT_EQ(EventTrace(9).capacity(), 16u);
  EXPECT_EQ(EventTrace(1024).capacity(), 1024u);
}

TEST(EventTrace, DumpRendersTheTail) {
  EventTrace trace(16);
  trace.Record(EventKind::kWalRotate, "shard-3", 7, 0);
  trace.Record(EventKind::kDegraded, "shard-3", 0, 0);
  const std::string dump = trace.Dump(/*max_events=*/1);
  EXPECT_EQ(dump.find("wal-rotate"), std::string::npos) << dump;
  EXPECT_NE(dump.find("degraded"), std::string::npos) << dump;
  EXPECT_NE(dump.find("shard-3"), std::string::npos) << dump;
}

TEST(EventTrace, ConcurrentRecordNeverTearsAnEvent) {
  // Many writers lapping a tiny ring while a reader snapshots: every
  // event a snapshot returns must be internally consistent (the seqlock
  // stamps filter torn slots).
  EventTrace trace(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent& e : trace.Snapshot()) {
        // Writer t records a = t, b = t * 1000 + i, detail = "w<t>".
        const uint64_t t = e.a;
        ASSERT_LT(t, static_cast<uint64_t>(kThreads));
        ASSERT_EQ(e.b / 1000000, t);
        std::string want("w");
        want += std::to_string(t);
        ASSERT_EQ(std::string(e.detail), want);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&trace, t] {
      std::string detail("w");
      detail += std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        trace.Record(EventKind::kRetryBackoff, detail,
                     static_cast<uint64_t>(t),
                     static_cast<uint64_t>(t) * 1000000 + i);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(trace.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// Restores the disabled-tracing default however the test exits.
struct SamplingGuard {
  ~SamplingGuard() {
    SetTraceSampling(0);
    SetSlowOpThresholdMs(0);
  }
};

/// The global collector's records published after `mark` tickets.
/// Snapshot is oldest-first; keep the newest (recorded - mark) entries.
std::vector<SpanRecord> RecordsAfter(uint64_t mark) {
  const std::vector<SpanRecord> all = TraceCollector::Global().Snapshot();
  const uint64_t want = TraceCollector::Global().recorded() - mark;
  const size_t n = std::min<size_t>(all.size(), static_cast<size_t>(want));
  return std::vector<SpanRecord>(all.end() - static_cast<long>(n),
                                 all.end());
}

const SpanRecord* FindByName(const std::vector<SpanRecord>& recs,
                             const char* name) {
  for (const auto& r : recs) {
    if (std::string(r.name) == name) return &r;
  }
  return nullptr;
}

TEST(Span, DisabledSpansCostNothingAndRecordNothing) {
  SamplingGuard guard;
  SetTraceSampling(0);
  EXPECT_FALSE(TracingActive());
  const uint64_t before = TraceCollector::Global().recorded();
  {
    ScopedSpan s("test.noop", 1, 2);
    EXPECT_FALSE(s.recording());
  }
  EXPECT_EQ(TraceCollector::Global().recorded(), before);
  // A slow-op threshold alone turns tracking on (the slow-op log needs
  // the stack), but publishing stays gated on sampling.
  SetSlowOpThresholdMs(60000);
  EXPECT_TRUE(TracingActive());
  {
    ScopedSpan s("test.noop2");
  }
  EXPECT_EQ(TraceCollector::Global().recorded(), before);
}

TEST(Span, NestedSpansRecordParentChainAndContainment) {
  SamplingGuard guard;
  SetTraceSampling(1, 1);  // sample every root
  const uint64_t mark = TraceCollector::Global().recorded();
  {
    ScopedSpan outer("test.outer", 7);
    {
      ScopedSpan mid("test.mid");
      mid.SetArgs(11, 13);
      mid.SetTag("mid-tag");
      {
        ScopedSpan leaf("test.leaf");
        EXPECT_TRUE(leaf.recording());
      }
    }
  }
  const std::vector<SpanRecord> recs = RecordsAfter(mark);
  ASSERT_EQ(recs.size(), 3u);
  const SpanRecord* outer = FindByName(recs, "test.outer");
  const SpanRecord* mid = FindByName(recs, "test.mid");
  const SpanRecord* leaf = FindByName(recs, "test.leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(leaf, nullptr);

  // One trace, ids chained root -> mid -> leaf.
  EXPECT_NE(outer->trace_id, 0u);
  EXPECT_EQ(mid->trace_id, outer->trace_id);
  EXPECT_EQ(leaf->trace_id, outer->trace_id);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(mid->parent_id, outer->span_id);
  EXPECT_EQ(leaf->parent_id, mid->span_id);
  EXPECT_EQ(outer->tid, mid->tid);

  // Args and tag travel.
  EXPECT_EQ(outer->a, 7u);
  EXPECT_EQ(mid->a, 11u);
  EXPECT_EQ(mid->b, 13u);
  EXPECT_EQ(std::string(mid->tag), "mid-tag");

  // Strict time containment: each child starts no earlier and ends no
  // later than its parent.
  EXPECT_GE(mid->start_nanos, outer->start_nanos);
  EXPECT_LE(mid->start_nanos + mid->dur_nanos,
            outer->start_nanos + outer->dur_nanos);
  EXPECT_GE(leaf->start_nanos, mid->start_nanos);
  EXPECT_LE(leaf->start_nanos + leaf->dur_nanos,
            mid->start_nanos + mid->dur_nanos);
}

TEST(Span, SamplingIsDeterministicAndExact) {
  SamplingGuard guard;
  SetTraceSampling(4, 42);
  // Over any window of k*N root spans exactly k are sampled — the
  // decision is (root_count % N == phase), not a coin flip — so two
  // identical windows record identical counts at identical positions.
  auto run_window = [] {
    std::vector<uint64_t> sampled_args;
    for (uint64_t i = 0; i < 100; ++i) {
      ScopedSpan root("test.det", i);
      if (root.recording()) sampled_args.push_back(i);
    }
    return sampled_args;
  };
  const std::vector<uint64_t> a = run_window();
  const std::vector<uint64_t> b = run_window();
  EXPECT_EQ(a.size(), 25u);
  EXPECT_EQ(b.size(), 25u);
  EXPECT_EQ(a, b) << "same thread, same window: same sampled positions";
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_EQ(a[i] - a[i - 1], 4u) << "every 4th root, exactly";
  }
}

TEST(Span, CollectorCapsMemoryAndCountsDrops) {
  TraceCollector coll(100);  // rounds up to 128 slots
  EXPECT_EQ(coll.capacity(), 128u);
  std::vector<SpanRecord> batch(30);
  for (uint64_t i = 0; i < 300; ++i) {
    SpanRecord& r = batch[i % batch.size()];
    r.trace_id = 1;
    r.span_id = i + 1;
    r.start_nanos = i * 1000;
    r.dur_nanos = 100;
    std::snprintf(r.name, sizeof(r.name), "span-%llu",
                  static_cast<unsigned long long>(i));
    if (i % batch.size() == batch.size() - 1) {
      coll.PublishBatch(batch.data(), batch.size());
    }
  }
  EXPECT_EQ(coll.recorded(), 300u);
  EXPECT_EQ(coll.dropped(), 300u - 128u);
  const std::vector<SpanRecord> snap = coll.Snapshot();
  EXPECT_EQ(snap.size(), 128u);
  // The ring keeps the newest spans: ids 173..300.
  EXPECT_EQ(snap.front().span_id, 173u);
  EXPECT_EQ(snap.back().span_id, 300u);
}

/// Minimal JSON syntax validator: enough to prove ToChromeJson emits a
/// parseable document (balanced structure, quoted strings, no trailing
/// commas), without a JSON library dependency.
bool ValidJson(const std::string& s, size_t* pos);

bool SkipWs(const std::string& s, size_t* pos) {
  while (*pos < s.size() &&
         (s[*pos] == ' ' || s[*pos] == '\n' || s[*pos] == '\t' ||
          s[*pos] == '\r')) {
    ++*pos;
  }
  return *pos < s.size();
}

bool ValidString(const std::string& s, size_t* pos) {
  if (s[*pos] != '"') return false;
  ++*pos;
  while (*pos < s.size() && s[*pos] != '"') {
    if (s[*pos] == '\\') ++*pos;
    ++*pos;
  }
  if (*pos >= s.size()) return false;
  ++*pos;  // closing quote
  return true;
}

bool ValidNumber(const std::string& s, size_t* pos) {
  const size_t start = *pos;
  if (*pos < s.size() && (s[*pos] == '-' || s[*pos] == '+')) ++*pos;
  while (*pos < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[*pos])) ||
          s[*pos] == '.' || s[*pos] == 'e' || s[*pos] == 'E' ||
          s[*pos] == '-' || s[*pos] == '+')) {
    ++*pos;
  }
  return *pos > start;
}

bool ValidJson(const std::string& s, size_t* pos) {
  if (!SkipWs(s, pos)) return false;
  const char c = s[*pos];
  if (c == '{') {
    ++*pos;
    if (!SkipWs(s, pos)) return false;
    if (s[*pos] == '}') {
      ++*pos;
      return true;
    }
    while (true) {
      if (!SkipWs(s, pos) || !ValidString(s, pos)) return false;
      if (!SkipWs(s, pos) || s[*pos] != ':') return false;
      ++*pos;
      if (!ValidJson(s, pos)) return false;
      if (!SkipWs(s, pos)) return false;
      if (s[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (s[*pos] == '}') {
        ++*pos;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++*pos;
    if (!SkipWs(s, pos)) return false;
    if (s[*pos] == ']') {
      ++*pos;
      return true;
    }
    while (true) {
      if (!ValidJson(s, pos)) return false;
      if (!SkipWs(s, pos)) return false;
      if (s[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (s[*pos] == ']') {
        ++*pos;
        return true;
      }
      return false;
    }
  }
  if (c == '"') return ValidString(s, pos);
  if (s.compare(*pos, 4, "true") == 0) {
    *pos += 4;
    return true;
  }
  if (s.compare(*pos, 5, "false") == 0) {
    *pos += 5;
    return true;
  }
  if (s.compare(*pos, 4, "null") == 0) {
    *pos += 4;
    return true;
  }
  return ValidNumber(s, pos);
}

TEST(Span, ChromeJsonIsWellFormedAndPreservesNesting) {
  TraceCollector coll(64);
  // A hand-built two-thread trace: on tid 1, parent [1000, 9000] with
  // child [2000, 5000]; on tid 2 an unrelated root.
  SpanRecord parent;
  parent.trace_id = 0xabc;
  parent.span_id = 10;
  parent.start_nanos = 1000;
  parent.dur_nanos = 8000;
  parent.tid = 1;
  std::snprintf(parent.name, sizeof(parent.name), "outer");
  SpanRecord child = parent;
  child.span_id = 11;
  child.parent_id = 10;
  child.start_nanos = 2000;
  child.dur_nanos = 3000;
  std::snprintf(child.name, sizeof(child.name), "inner");
  std::snprintf(child.tag, sizeof(child.tag), "t\"ag\\");  // needs escaping
  SpanRecord other;
  other.trace_id = 0xdef;
  other.span_id = 12;
  other.start_nanos = 500;
  other.dur_nanos = 100;
  other.tid = 2;
  std::snprintf(other.name, sizeof(other.name), "solo");
  const SpanRecord recs[] = {child, parent, other};
  coll.PublishBatch(recs, 3);

  const std::string json = coll.ToChromeJson();
  size_t pos = 0;
  EXPECT_TRUE(ValidJson(json, &pos)) << json;
  SkipWs(json, &pos);
  EXPECT_EQ(pos, json.size()) << "trailing garbage after the document";

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"solo\""), std::string::npos);

  // Nesting survives the nanos -> microseconds conversion: extract each
  // event's ts/dur (µs doubles) and check the child interval is still
  // strictly inside the parent's.
  auto event_field = [&](const char* name, const char* field) -> double {
    const size_t at = json.find("\"" + std::string(name) + "\"");
    EXPECT_NE(at, std::string::npos);
    const size_t f = json.find("\"" + std::string(field) + "\":", at);
    EXPECT_NE(f, std::string::npos);
    return std::atof(json.c_str() + f + std::strlen(field) + 3);
  };
  const double pts = event_field("outer", "ts");
  const double pdur = event_field("outer", "dur");
  const double cts = event_field("inner", "ts");
  const double cdur = event_field("inner", "dur");
  EXPECT_GE(cts, pts);
  EXPECT_LE(cts + cdur, pts + pdur);
  // Cross-thread causality args: the child names its parent span id.
  const size_t inner_at = json.find("\"inner\"");
  const size_t parent_arg = json.find("\"parent\":\"a\"", inner_at);
  EXPECT_NE(parent_arg, std::string::npos) << "parent id 10 = hex a";
}

TEST(Span, ContextPropagatesAcrossThreads) {
  SamplingGuard guard;
  SetTraceSampling(1, 1);
  const uint64_t mark = TraceCollector::Global().recorded();
  TraceContext captured;
  {
    ScopedSpan root("test.ctx.root");
    captured = CurrentTraceContext();
    EXPECT_NE(captured.trace_id, 0u);
    std::thread worker([captured] {
      ScopedTraceContext adopt(captured);
      ScopedSpan child("test.ctx.child");
    });
    worker.join();
  }
  const std::vector<SpanRecord> recs = RecordsAfter(mark);
  const SpanRecord* root = FindByName(recs, "test.ctx.root");
  const SpanRecord* child = FindByName(recs, "test.ctx.child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, root->trace_id);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_NE(child->tid, root->tid) << "recorded on the worker's track";
}

TEST(Span, ConcurrentTracedAppendersNeverTearRecords) {
  // TSan lane: writers publishing sampled span trees while a reader
  // snapshots the shared collector. Every record a snapshot returns
  // must be internally consistent (ids nonzero, known name).
  SamplingGuard guard;
  SetTraceSampling(1, 7);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const SpanRecord& r : TraceCollector::Global().Snapshot()) {
        ASSERT_NE(r.span_id, 0u);
        ASSERT_NE(r.trace_id, 0u);
        const std::string name(r.name);
        ASSERT_FALSE(name.empty());
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan root("test.mt.root", static_cast<uint64_t>(i));
        ScopedSpan child("test.mt.child");
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  // 4 threads x 2000 roots x 2 spans, all sampled.
  EXPECT_GE(TraceCollector::Global().recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread * 2);
}

TEST(Span, WatchdogFiresOnceOnOverdueOpAndNotOnFastOp) {
  // A 1 ms budget op left armed past its deadline fires exactly once;
  // an op disarmed in time never fires.
  Watchdog& dog = Watchdog::Global();
  const uint64_t before = dog.stalls_fired();
  {
    ScopedWatch fast("test.fast", "fast-op", 1000);
  }
  EXPECT_EQ(dog.stalls_fired(), before);
  const uint64_t h = dog.Arm("test.slow", "slow-op", 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(dog.stalls_fired(), before + 1);
  dog.Disarm(h);
  // Already fired: disarm after the fact neither refires nor crashes.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(dog.stalls_fired(), before + 1);
  // Negative budget disables arming entirely.
  EXPECT_EQ(dog.Arm("test.off", "disabled", -1), 0u);
}

}  // namespace
}  // namespace fcbench::obs
