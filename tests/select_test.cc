// Tests for the online adaptive compressor-selection subsystem
// (src/select/): feature extraction, the probe-based scorer, the
// decision cache, the explain/trace API, and its adoption points
// (registry auto methods, StreamWriter::OpenChunked, ColumnStore).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "core/streaming.h"
#include "db/column_store.h"
#include "select/auto_compressor.h"
#include "select/features.h"
#include "select/selector.h"
#include "util/rng.h"

namespace fcbench {
namespace {

std::vector<double> SmoothWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 42.0;
  for (auto& f : v) {
    x += rng.Normal() * 0.01;
    f = x;
  }
  return v;
}

std::vector<double> RandomBits(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& f : v) {
    uint64_t w = rng.Next() >> 4;  // positive finite patterns
    std::memcpy(&f, &w, 8);
  }
  return v;
}

// --- features ---------------------------------------------------------------

TEST(FeaturesTest, ConstantDataIsDegenerate) {
  std::vector<double> v(2048, 1.25);
  auto f = select::ExtractChunkFeatures(AsBytes(v), DType::kFloat64);
  // One repeated word: zero word entropy, and byte entropy bounded by
  // the handful of distinct bytes inside the 8-byte pattern.
  EXPECT_LT(f.byte_entropy, 1.5);
  EXPECT_DOUBLE_EQ(f.word_entropy, 0.0);
  EXPECT_DOUBLE_EQ(f.repeat_ratio, 1.0);
  EXPECT_DOUBLE_EQ(f.xor_lz, 64.0);  // all XORs are zero
  EXPECT_DOUBLE_EQ(f.xor_tz, 64.0);
}

TEST(FeaturesTest, MonotoneRampHasFullDeltaMonotonicity) {
  std::vector<double> v(2048);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto f = select::ExtractChunkFeatures(AsBytes(v), DType::kFloat64);
  EXPECT_DOUBLE_EQ(f.delta_mono, 1.0);
  EXPECT_EQ(f.repeat_ratio, 0.0);
}

TEST(FeaturesTest, NoiseShowsHighEntropyLowStructure) {
  auto noise = RandomBits(4096, 9);
  auto smooth = SmoothWalk(4096, 9);
  auto fn = select::ExtractChunkFeatures(AsBytes(noise), DType::kFloat64);
  auto fs = select::ExtractChunkFeatures(AsBytes(smooth), DType::kFloat64);
  // Word entropy saturates for continuous data (every word distinct in
  // both corpora); the byte distribution is what separates them.
  EXPECT_GT(fn.byte_entropy, fs.byte_entropy);
  EXPECT_GT(fn.byte_entropy, 6.0);
  // A smooth walk shares sign+exponent+high mantissa bits between
  // neighbours; noise does not.
  EXPECT_GT(fs.xor_lz, fn.xor_lz);
}

TEST(FeaturesTest, QuantizedDecimalsShowMantissaTrailingZeros) {
  // Values with few decimal digits carry long runs of trailing
  // mantissa zeros — the signature BUFF/zstd-style methods exploit.
  std::vector<double> v(2048);
  Rng rng(5);
  for (auto& f : v) f = 0.25 * static_cast<double>(rng.UniformInt(1000));
  auto fq = select::ExtractChunkFeatures(AsBytes(v), DType::kFloat64);
  auto fn = select::ExtractChunkFeatures(AsBytes(RandomBits(2048, 6)),
                                         DType::kFloat64);
  EXPECT_GT(fq.mantissa_tz, 30.0);
  EXPECT_LT(fn.mantissa_tz, 10.0);
}

TEST(FeaturesTest, SignatureIsDeterministicAndDtypeAware) {
  auto v = SmoothWalk(4096, 11);
  auto f1 = select::ExtractChunkFeatures(AsBytes(v), DType::kFloat64);
  auto f2 = select::ExtractChunkFeatures(AsBytes(v), DType::kFloat64);
  EXPECT_EQ(f1.Signature(DType::kFloat64), f2.Signature(DType::kFloat64));
  EXPECT_NE(f1.Signature(DType::kFloat64), f1.Signature(DType::kFloat32));
}

TEST(FeaturesTest, ToStringUsesSharedVocabulary) {
  auto f = select::ExtractChunkFeatures(AsBytes(SmoothWalk(512, 3)),
                                        DType::kFloat64);
  std::string s = f.ToString();
  for (std::string_view vocab :
       {select::kVocabByteEntropy, select::kVocabWordEntropy,
        select::kVocabXorLz, select::kVocabXorTz, select::kVocabDeltaMono,
        select::kVocabMantissaTz, select::kVocabRepeatRatio}) {
    EXPECT_NE(s.find(vocab), std::string::npos) << vocab << " in " << s;
  }
}

// --- selector ---------------------------------------------------------------

select::Selector MakeSelector(Objective objective, int cache = -1) {
  select::Selector::Config cfg;
  cfg.objective = objective;
  cfg.cache_capacity = cache;
  return select::Selector(cfg);
}

DataDesc Desc64(size_t n) { return DataDesc::Make(DType::kFloat64, {n}); }

TEST(SelectorTest, DecisionCarriesEvidence) {
  auto v = SmoothWalk(8192, 21);
  auto sel = MakeSelector(Objective::kStorageReduction);
  auto d = sel.Choose(AsBytes(v), Desc64(v.size()));
  EXPECT_FALSE(d.method.empty());
  EXPECT_FALSE(d.cache_hit);
  EXPECT_FALSE(d.rationale.empty());
  EXPECT_EQ(d.candidates.size(),
            select::Selector::DefaultCandidates().size());
  // The winner's probe must have succeeded and carry the best score.
  bool winner_seen = false;
  for (const auto& c : d.candidates) {
    if (c.method == d.method) {
      winner_seen = true;
      EXPECT_TRUE(c.ok);
    }
  }
  EXPECT_TRUE(winner_seen);
  EXPECT_NE(d.rationale.find("objective=storage"), std::string::npos)
      << d.rationale;
}

TEST(SelectorTest, RatioObjectivePicksTheBestProbe) {
  auto v = SmoothWalk(8192, 22);
  auto sel = MakeSelector(Objective::kStorageReduction);
  auto d = sel.Choose(AsBytes(v), Desc64(v.size()));
  double best = 0;
  for (const auto& c : d.candidates) {
    if (c.ok && c.sample_cr > best) best = c.sample_cr;
  }
  for (const auto& c : d.candidates) {
    if (c.method == d.method) {
      EXPECT_DOUBLE_EQ(c.sample_cr, best);
    }
  }
}

TEST(SelectorTest, SpeedObjectiveShortlistsFastMethods) {
  auto v = RandomBits(8192, 23);
  auto sel = MakeSelector(Objective::kSpeed);
  auto d = sel.Choose(AsBytes(v), Desc64(v.size()));
  // The speed shortlist prunes the modeled-slow half; fpzip and spdp
  // must not have been probed on featureless noise.
  for (const auto& c : d.candidates) {
    EXPECT_NE(c.method, "fpzip");
    EXPECT_NE(c.method, "spdp");
  }
  EXPECT_LT(d.candidates.size(),
            select::Selector::DefaultCandidates().size());
}

TEST(SelectorTest, CacheHitsSkipProbes) {
  auto v = SmoothWalk(8192, 24);
  auto sel = MakeSelector(Objective::kBalanced);
  auto first = sel.Choose(AsBytes(v), Desc64(v.size()));
  ASSERT_FALSE(first.cache_hit);
  auto second = sel.Choose(AsBytes(v), Desc64(v.size()));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.method, first.method);
  EXPECT_TRUE(second.candidates.empty());  // no probes ran
  EXPECT_EQ(sel.cache_hits(), 1u);
  EXPECT_EQ(sel.cache_misses(), 1u);
}

TEST(SelectorTest, CacheCapacityZeroDisablesCaching) {
  auto v = SmoothWalk(8192, 25);
  auto sel = MakeSelector(Objective::kBalanced, /*cache=*/0);
  (void)sel.Choose(AsBytes(v), Desc64(v.size()));
  auto second = sel.Choose(AsBytes(v), Desc64(v.size()));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(sel.cache_hits(), 0u);
}

TEST(SelectorTest, CacheEvictsOldestSignatures) {
  // Capacity 1: a second distinct signature evicts the first, so
  // re-choosing the first data probes again.
  auto smooth = SmoothWalk(8192, 26);
  auto noise = RandomBits(8192, 26);
  auto sel = MakeSelector(Objective::kStorageReduction, /*cache=*/1);
  (void)sel.Choose(AsBytes(smooth), Desc64(smooth.size()));
  (void)sel.Choose(AsBytes(noise), Desc64(noise.size()));
  auto again = sel.Choose(AsBytes(smooth), Desc64(smooth.size()));
  EXPECT_FALSE(again.cache_hit);
}

TEST(SelectorTest, ChoiceIsDeterministicAcrossInstances) {
  auto v = SmoothWalk(32768, 27);
  auto a = MakeSelector(Objective::kStorageReduction);
  auto b = MakeSelector(Objective::kStorageReduction);
  auto da = a.Choose(AsBytes(v), Desc64(v.size()));
  auto db = b.Choose(AsBytes(v), Desc64(v.size()));
  EXPECT_EQ(da.method, db.method);
  EXPECT_EQ(da.signature, db.signature);
}

TEST(SelectorTest, TinyChunksAreHandled) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  auto sel = MakeSelector(Objective::kBalanced);
  auto d = sel.Choose(AsBytes(v), Desc64(v.size()));
  EXPECT_FALSE(d.method.empty());
}

// --- auto compressor + trace ------------------------------------------------

TEST(AutoCompressorTest, NamesAndObjectivesRoundTrip) {
  EXPECT_EQ(select::AutoMethodName(Objective::kBalanced), "auto");
  EXPECT_EQ(select::AutoMethodName(Objective::kSpeed), "auto-speed");
  EXPECT_EQ(select::AutoMethodName(Objective::kStorageReduction),
            "auto-ratio");
  Objective o;
  EXPECT_TRUE(select::ParseAutoMethod("auto", &o));
  EXPECT_EQ(o, Objective::kBalanced);
  EXPECT_TRUE(select::ParseAutoMethod("auto-ratio", &o));
  EXPECT_EQ(o, Objective::kStorageReduction);
  EXPECT_TRUE(select::ParseAutoMethod("auto-speed", nullptr));
  EXPECT_FALSE(select::ParseAutoMethod("automatic", nullptr));
  EXPECT_FALSE(select::ParseAutoMethod("gorilla", nullptr));
}

TEST(AutoCompressorTest, TraceRecordsEveryChunkWithEvidence) {
  RegisterAllCompressors();
  auto v = SmoothWalk(4096, 31);
  select::SelectionTrace trace;
  CompressorConfig cfg;
  cfg.chunk_bytes = 8192;  // 4 chunks of 1024 f64
  cfg.selection_trace = &trace;
  auto comp = CompressorRegistry::Global().Create("auto", cfg).TakeValue();
  Buffer out;
  ASSERT_TRUE(comp->Compress(AsBytes(v), Desc64(v.size()), &out).ok());
  ASSERT_EQ(trace.entries.size(), 4u);
  for (const auto& e : trace.entries) {
    EXPECT_FALSE(e.decision.method.empty());
    EXPECT_GE(e.select_seconds, 0.0);
    EXPECT_EQ(e.raw_bytes, 8192u);
  }
  // Homogeneous data: chunks after the first hit the decision cache.
  EXPECT_GE(trace.cache_hits(), 1u);
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find(select::kVocabByteEntropy), std::string::npos);
  EXPECT_NE(rendered.find("decision-cache hits"), std::string::npos);
}

TEST(AutoCompressorTest, EmptyInputRoundTrips) {
  RegisterAllCompressors();
  auto comp = CompressorRegistry::Global().Create("auto").TakeValue();
  DataDesc desc = DataDesc::Make(DType::kFloat64, {0});
  Buffer enc, dec;
  ASSERT_TRUE(comp->Compress(ByteSpan(), desc, &enc).ok());
  EXPECT_GT(enc.size(), 0u);  // header still present
  ASSERT_TRUE(comp->Decompress(enc.span(), desc, &dec).ok());
  EXPECT_EQ(dec.size(), 0u);
}

TEST(AutoCompressorTest, RejectsSizeMismatch) {
  RegisterAllCompressors();
  auto comp = CompressorRegistry::Global().Create("auto").TakeValue();
  std::vector<double> v(16, 1.0);
  Buffer out;
  auto st = comp->Compress(AsBytes(v), Desc64(99), &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// --- adoption: streaming ----------------------------------------------------

TEST(SelectStreamingTest, OpenChunkedAcceptsAutoMethods) {
  RegisterAllCompressors();
  auto v = SmoothWalk(3000, 41);
  CompressorConfig cfg;
  cfg.chunk_bytes = 4096;
  auto writer = StreamWriter::OpenChunked("auto-ratio", cfg);
  ASSERT_TRUE(writer.ok());
  Buffer stream;
  ASSERT_TRUE(writer.value()
                  .Append(AsBytes(v), DType::kFloat64, &stream)
                  .ok());
  auto reader = StreamReader::OpenChunked("auto-ratio", cfg);
  ASSERT_TRUE(reader.ok());
  Buffer out;
  ASSERT_TRUE(reader.value().Next(stream.span(), &out).ok());
  ASSERT_EQ(out.size(), v.size() * 8);
  EXPECT_EQ(std::memcmp(out.data(), v.data(), out.size()), 0);
}

// --- adoption: column store -------------------------------------------------

class SelectColumnStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterAllCompressors();
    prefix_ = ::testing::TempDir() + "select_cols";
  }
  void TearDown() override { (void)db::ColumnStore::Drop(prefix_); }
  std::string prefix_;
};

TEST_F(SelectColumnStoreTest, AutoColumnsPersistResolvedMethods) {
  auto smooth = SmoothWalk(4000, 51);
  auto noise = RandomBits(4000, 52);
  std::vector<db::ColumnStore::ColumnSpec> cols(3);
  cols[0] = {.name = "smooth", .compressor = "auto-ratio",
             .dtype = DType::kFloat64, .precision_digits = 0,
             .values = smooth};
  cols[1] = {.name = "noise", .compressor = "auto-speed",
             .dtype = DType::kFloat64, .precision_digits = 0,
             .values = noise};
  cols[2] = {.name = "fixed", .compressor = "gorilla",
             .dtype = DType::kFloat64, .precision_digits = 0,
             .values = smooth};
  ASSERT_TRUE(db::ColumnStore::Write(prefix_, cols).ok());

  auto methods = db::ColumnStore::ListMethods(prefix_);
  ASSERT_TRUE(methods.ok());
  ASSERT_EQ(methods.value().size(), 3u);
  // Auto columns resolve to a concrete registered method — never the
  // "auto*" placeholder — and explicit choices persist verbatim.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(methods.value()[i].rfind("auto", 0), std::string::npos)
        << methods.value()[i];
    EXPECT_TRUE(
        CompressorRegistry::Global().Contains(methods.value()[i]))
        << methods.value()[i];
  }
  EXPECT_EQ(methods.value()[2], "gorilla");

  // Data reads back exactly regardless of which method won.
  auto frame = db::ColumnStore::Read(prefix_, {"smooth"});
  ASSERT_TRUE(frame.ok());
  const auto& col = frame.value().column(0);
  ASSERT_EQ(col.size(), smooth.size());
  EXPECT_EQ(std::memcmp(col.data(), smooth.data(), smooth.size() * 8), 0);
}

}  // namespace
}  // namespace fcbench