// Tests for the core harness: registry, benchmark runner protocol,
// aggregation, recommendation engine, and the NN coder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "core/compressor.h"
#include "core/recommend.h"
#include "core/runner.h"
#include "data/dataset.h"
#include "nn/nn_coder.h"
#include "util/rng.h"

namespace fcbench {
namespace {

TEST(RegistryTest, AllFifteenMethodsRegistered) {
  auto names = CompressorRegistry::Global().Names();
  std::set<std::string> set(names.begin(), names.end());
  for (const char* expected :
       {"pfpc", "spdp", "fpzip", "bitshuffle_lz4", "bitshuffle_zstd",
        "ndzip_cpu", "buff", "gorilla", "chimp128", "gfc", "mpc", "nv_lz4",
        "nv_bitcomp", "ndzip_gpu", "dzip_nn"}) {
    EXPECT_TRUE(set.count(expected)) << expected;
  }
  // Every lossless CPU method also has a chunk-parallel par- variant.
  for (const char* expected :
       {"par-pfpc", "par-spdp", "par-fpzip", "par-bitshuffle_lz4",
        "par-bitshuffle_zstd", "par-ndzip_cpu", "par-gorilla",
        "par-chimp128"}) {
    EXPECT_TRUE(set.count(expected)) << expected;
  }
  // Plus the three online adaptive selectors (one per §7.3 objective).
  for (const char* expected : {"auto", "auto-speed", "auto-ratio"}) {
    EXPECT_TRUE(set.count(expected)) << expected;
  }
  EXPECT_EQ(names.size(), 15u + 8u + 3u);
}

TEST(RunnerTest, ParallelModeResolvesParVariants) {
  BenchmarkRunner::Options opt;
  opt.parallel = true;
  BenchmarkRunner runner(opt);
  EXPECT_EQ(runner.ResolveMethod("gorilla"), "par-gorilla");
  EXPECT_EQ(runner.ResolveMethod("par-gorilla"), "par-gorilla");  // no par-par-
  EXPECT_EQ(runner.ResolveMethod("gfc"), "gfc");  // no par variant exists
  // The selectors are chunk-parallel already; no par- prefix applies.
  EXPECT_EQ(runner.ResolveMethod("auto"), "auto");
  EXPECT_EQ(runner.ResolveMethod("auto-ratio"), "auto-ratio");

  BenchmarkRunner serial;
  EXPECT_EQ(serial.ResolveMethod("gorilla"), "gorilla");
}

TEST(RunnerTest, AutoMethodRunsThroughTheProtocol) {
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  opt.dataset_bytes = 1 << 16;
  BenchmarkRunner runner(opt);
  auto ds = data::GenerateDataset(*data::FindDataset("citytemp"), 1 << 16);
  ASSERT_TRUE(ds.ok());
  RunResult r = runner.RunOne(std::string("auto"), ds.value());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.method, "auto");
  EXPECT_TRUE(r.round_trip_exact);
  EXPECT_GT(r.cr, 1.0);
}

TEST(RegistryTest, AutoTraits) {
  auto& reg = CompressorRegistry::Global();
  for (const char* name : {"auto", "auto-speed", "auto-ratio"}) {
    auto c = reg.Create(name);
    ASSERT_TRUE(c.ok()) << name;
    const auto& t = c.value()->traits();
    EXPECT_EQ(t.name, name);
    EXPECT_TRUE(t.parallel) << name;
    EXPECT_EQ(t.arch, Arch::kCpu) << name;
    EXPECT_TRUE(t.supports_f32) << name;
    EXPECT_TRUE(t.supports_f64) << name;
  }
}

TEST(RunnerTest, ParallelModeRunsTheParVariant) {
  BenchmarkRunner::Options opt;
  opt.parallel = true;
  opt.repeats = 1;
  opt.dataset_bytes = 1 << 16;
  BenchmarkRunner runner(opt);
  auto ds = data::GenerateDataset(*data::FindDataset("msg-bt"), 1 << 16);
  ASSERT_TRUE(ds.ok());
  RunResult r = runner.RunOne(std::string("gorilla"), ds.value());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.method, "par-gorilla");  // result carries the resolved name
  EXPECT_TRUE(r.round_trip_exact);
}

TEST(RegistryTest, ParVariantTraitsMirrorBase) {
  auto& reg = CompressorRegistry::Global();
  auto base = reg.Create("gorilla").TakeValue();
  auto par = reg.Create("par-gorilla").TakeValue();
  EXPECT_EQ(par->traits().name, "par-gorilla");
  EXPECT_TRUE(par->traits().parallel);
  EXPECT_EQ(par->traits().predictor, base->traits().predictor);
  EXPECT_EQ(par->traits().arch, Arch::kCpu);
}

TEST(RegistryTest, CreateUnknownFails) {
  auto r = CompressorRegistry::Global().Create("lzma9000");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, TraitsMatchTable1) {
  auto& reg = CompressorRegistry::Global();
  struct Expect {
    const char* name;
    int year;
    Arch arch;
    bool parallel;
  };
  for (const Expect& e : std::initializer_list<Expect>{
           {"fpzip", 2006, Arch::kCpu, false},
           {"pfpc", 2009, Arch::kCpu, true},
           {"gfc", 2011, Arch::kGpu, true},
           {"gorilla", 2015, Arch::kCpu, false},
           {"mpc", 2015, Arch::kGpu, true},
           {"spdp", 2018, Arch::kCpu, false},
           {"ndzip_cpu", 2021, Arch::kCpu, true},
           {"buff", 2021, Arch::kCpu, false},
           {"chimp128", 2022, Arch::kCpu, false}}) {
    auto c = reg.Create(e.name);
    ASSERT_TRUE(c.ok()) << e.name;
    const auto& t = c.value()->traits();
    EXPECT_EQ(t.year, e.year) << e.name;
    EXPECT_EQ(t.arch, e.arch) << e.name;
    EXPECT_EQ(t.parallel, e.parallel) << e.name;
  }
}

TEST(RunnerTest, ProducesVerifiedResult) {
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  opt.dataset_bytes = 256 << 10;
  BenchmarkRunner runner(opt);
  auto ds = data::GenerateDataset(*data::FindDataset("turbulence"),
                                  opt.dataset_bytes);
  ASSERT_TRUE(ds.ok());
  auto r = runner.RunOne("ndzip_cpu", ds.value());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.round_trip_exact);
  EXPECT_GT(r.cr, 1.0);
  EXPECT_GT(r.ct_gbps, 0.0);
  EXPECT_GT(r.dt_gbps, 0.0);
  EXPECT_GT(r.comp_wall_ms, 0.0);
  EXPECT_EQ(r.orig_bytes, ds.value().bytes.size());
}

TEST(RunnerTest, GpuMethodUsesModeledTiming) {
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  BenchmarkRunner runner(opt);
  auto ds = data::GenerateDataset(*data::FindDataset("msg-bt"), 512 << 10);
  ASSERT_TRUE(ds.ok());
  auto r = runner.RunOne("nv_bitcomp", ds.value());
  ASSERT_TRUE(r.ok) << r.error;
  // Modeled GPU throughput far exceeds anything the host could measure.
  EXPECT_GT(r.ct_gbps, 20.0);
  // End-to-end wall includes PCIe transfers, so wall time > kernel time.
  double kernel_ms = static_cast<double>(r.orig_bytes) / (r.ct_gbps * 1e9) * 1e3;
  EXPECT_GT(r.comp_wall_ms, kernel_ms);
}

TEST(RunnerTest, GfcOnFloat32ReportsUnsupported) {
  BenchmarkRunner runner;
  auto ds = data::GenerateDataset(*data::FindDataset("citytemp"), 128 << 10);
  ASSERT_TRUE(ds.ok());
  auto r = runner.RunOne("gfc", ds.value());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(RunnerTest, SummarizeAggregates) {
  std::vector<RunResult> results;
  for (int d = 0; d < 3; ++d) {
    RunResult r;
    r.method = "m1";
    r.dataset = "d" + std::to_string(d);
    r.ok = true;
    r.cr = 2.0;
    r.ct_gbps = 1.0;
    r.dt_gbps = 2.0;
    results.push_back(r);
  }
  RunResult fail;
  fail.method = "m1";
  fail.dataset = "d3";
  fail.ok = false;
  results.push_back(fail);

  auto summaries = Summarize(results);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].runs, 4);
  EXPECT_EQ(summaries[0].failures, 1);
  EXPECT_NEAR(summaries[0].harmonic_cr, 2.0, 1e-12);
  EXPECT_NEAR(summaries[0].mean_dt_gbps, 2.0, 1e-12);
}

TEST(RunnerTest, CrMatrixLayout) {
  std::vector<RunResult> results;
  for (const char* d : {"a", "b"}) {
    for (const char* m : {"x", "y"}) {
      RunResult r;
      r.method = m;
      r.dataset = d;
      r.ok = std::string(m) == "x";
      r.cr = 1.5;
      results.push_back(r);
    }
  }
  auto matrix = CrMatrix(results, {"x", "y"}, {"a", "b"});
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_DOUBLE_EQ(matrix[0][0], 1.5);
  EXPECT_DOUBLE_EQ(matrix[0][1], 0.0);  // failed run ranks worst
}

TEST(RecommendTest, PicksBestPerObjective) {
  std::vector<RunResult> results;
  auto add = [&](const char* m, const char* d, double cr, double wall) {
    RunResult r;
    r.method = m;
    r.dataset = d;
    r.ok = true;
    r.cr = cr;
    r.comp_wall_ms = wall / 2;
    r.decomp_wall_ms = wall / 2;
    results.push_back(r);
  };
  // Two HPC datasets: "slowbig" compresses best, "fastsmall" is fastest.
  for (const char* d : {"msg-bt", "turbulence"}) {
    add("slowbig", d, 3.0, 100.0);
    add("fastsmall", d, 1.2, 1.0);
  }
  RecommendationEngine eng(results);
  EXPECT_EQ(
      eng.Recommend(data::Domain::kHpc, Objective::kStorageReduction).method,
      "slowbig");
  EXPECT_EQ(eng.Recommend(data::Domain::kHpc, Objective::kSpeed).method,
            "fastsmall");
  std::string map = eng.RenderMap();
  EXPECT_NE(map.find("storage/HPC"), std::string::npos);
}

// Helper shared by the RecommendGeneral tests: one ok result per
// (method, dataset) with the given cr and end-to-end wall split.
RunResult MakeResult(const char* m, const char* d, double cr, double wall) {
  RunResult r;
  r.method = m;
  r.dataset = d;
  r.ok = true;
  r.cr = cr;
  r.comp_wall_ms = wall / 2;
  r.decomp_wall_ms = wall / 2;
  return r;
}

TEST(RecommendTest, GeneralUsesRankSumAcrossMetrics) {
  // CR ranks {big:0, allround:1, fast:2}; wall ranks {fast:0,
  // allround:1, big:2}; every sum is 2, and the three-way rank-sum tie
  // must break toward the highest harmonic CR -> "big".
  std::vector<RunResult> results;
  for (const char* d : {"msg-bt", "citytemp"}) {
    results.push_back(MakeResult("big", d, 4.0, 100.0));
    results.push_back(MakeResult("allround", d, 3.5, 5.0));
    results.push_back(MakeResult("fast", d, 1.1, 4.0));
  }
  RecommendationEngine eng(results);
  auto g = eng.RecommendGeneral();
  EXPECT_EQ(g.method, "big");
  EXPECT_NEAR(g.harmonic_cr, 4.0, 1e-12);
}

TEST(RecommendTest, GeneralRankSumTieBreaksTowardHigherCr) {
  // Two methods, perfectly mirrored ranks (each is first on one metric
  // and second on the other): the tie must break toward the higher
  // harmonic CR, deterministically.
  std::vector<RunResult> results;
  for (const char* d : {"msg-bt", "citytemp"}) {
    results.push_back(MakeResult("squeezer", d, 3.0, 50.0));
    results.push_back(MakeResult("sprinter", d, 1.5, 2.0));
  }
  RecommendationEngine eng(results);
  auto g = eng.RecommendGeneral();
  EXPECT_EQ(g.method, "squeezer");
  // The rationale speaks the shared selector vocabulary.
  EXPECT_NE(g.rationale.find("rank_sum"), std::string::npos);
  EXPECT_NE(g.rationale.find("harmonic_cr"), std::string::npos);
  EXPECT_NE(g.rationale.find("wall_ms"), std::string::npos);
}

TEST(RecommendTest, GeneralTiedMetricsShareAverageRank) {
  // "a" and "b" have identical CR everywhere; whichever the sort visits
  // first must not get an artificial full-rank advantage. With shared
  // average CR ranks, wall time alone decides: "b" is faster.
  std::vector<RunResult> results;
  for (const char* d : {"msg-bt", "citytemp"}) {
    results.push_back(MakeResult("a", d, 2.0, 10.0));
    results.push_back(MakeResult("b", d, 2.0, 5.0));
    results.push_back(MakeResult("c", d, 1.2, 1.0));
  }
  RecommendationEngine eng(results);
  EXPECT_EQ(eng.RecommendGeneral().method, "b");
}

TEST(RecommendTest, RenderMapListsEveryObjectiveAndGeneralRow) {
  std::vector<RunResult> results;
  for (const char* d : {"msg-bt", "citytemp", "acs-wht", "tpcH-order"}) {
    results.push_back(MakeResult("m1", d, 2.0, 10.0));
    results.push_back(MakeResult("m2", d, 1.5, 2.0));
  }
  RecommendationEngine eng(results);
  std::string map = eng.RenderMap();
  for (const char* needle :
       {"storage/HPC", "storage/TS", "storage/OBS", "storage/DB",
        "speed/HPC", "speed/TS", "speed/OBS", "speed/DB", "general:"}) {
    EXPECT_NE(map.find(needle), std::string::npos) << needle << "\n" << map;
  }
  EXPECT_NE(map.find("m1"), std::string::npos);
}

TEST(RecommendTest, RationaleUsesSelectorVocabulary) {
  std::vector<RunResult> results;
  for (const char* d : {"msg-bt", "turbulence"}) {
    results.push_back(MakeResult("m1", d, 2.0, 10.0));
    results.push_back(MakeResult("m2", d, 1.5, 2.0));
  }
  RecommendationEngine eng(results);
  auto storage =
      eng.Recommend(data::Domain::kHpc, Objective::kStorageReduction);
  EXPECT_NE(storage.rationale.find("objective=storage"), std::string::npos)
      << storage.rationale;
  EXPECT_NE(storage.rationale.find("harmonic_cr"), std::string::npos);
  auto speed = eng.Recommend(data::Domain::kHpc, Objective::kSpeed);
  EXPECT_NE(speed.rationale.find("objective=speed"), std::string::npos);
  EXPECT_NE(speed.rationale.find("wall_ms"), std::string::npos);
  auto balanced = eng.Recommend(data::Domain::kHpc, Objective::kBalanced);
  EXPECT_NE(balanced.rationale.find("objective=balanced"),
            std::string::npos);
}

// --- NN coder ----------------------------------------------------------

TEST(NnCoderTest, RoundTripBytes) {
  Rng rng(31);
  std::vector<double> v(4000);
  double x = 0;
  for (auto& f : v) {
    x += rng.Normal() * 0.1;
    f = x;
  }
  auto comp = nn::DzipNnCompressor::Make({});
  Buffer c, d;
  auto desc = DataDesc::Make(DType::kFloat64, {v.size()});
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
  ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok());
  ASSERT_EQ(d.size(), v.size() * 8);
  EXPECT_EQ(std::memcmp(d.data(), v.data(), d.size()), 0);
}

TEST(NnCoderTest, CompressesSkewedBytes) {
  // Text-like bytes: the context models should reach well under 8 bits.
  std::vector<uint8_t> text(40000);
  Rng rng(37);
  for (auto& b : text) {
    uint64_t r = rng.UniformInt(10);
    b = r < 5 ? ' ' : static_cast<uint8_t>('a' + r);
  }
  auto comp = nn::DzipNnCompressor::Make({});
  Buffer c;
  auto desc = DataDesc::Make(DType::kFloat64, {text.size() / 8});
  ASSERT_TRUE(comp->Compress(ByteSpan(text.data(), text.size()), desc, &c)
                  .ok());
  EXPECT_LT(c.size(), text.size() / 2);
}

TEST(NnCoderTest, OrdersOfMagnitudeSlowerThanFastMethods) {
  // The §4.5 finding: NN-based compression is impractical. Compare coder
  // throughput on the same buffer against bitshuffle_lz4.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "timing ratios are meaningless under sanitizers";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "timing ratios are meaningless under sanitizers";
#endif
#endif
  auto ds = data::GenerateDataset(*data::FindDataset("citytemp"), 128 << 10);
  ASSERT_TRUE(ds.ok());
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  BenchmarkRunner runner(opt);
  auto nn_result = runner.RunOne("dzip_nn", ds.value());
  auto fast_result = runner.RunOne("bitshuffle_lz4", ds.value());
  ASSERT_TRUE(nn_result.ok) << nn_result.error;
  ASSERT_TRUE(fast_result.ok) << fast_result.error;
  EXPECT_LT(nn_result.ct_gbps * 20, fast_result.ct_gbps);
}

}  // namespace
}  // namespace fcbench
