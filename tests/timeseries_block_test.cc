// Tests for the Gorilla block-stream format (timestamps + values + block
// directory + range queries; paper §3.4).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "compressors/timeseries_block.h"
#include "util/rng.h"

namespace fcbench::compressors {
namespace {

std::vector<TsPoint> SensorSeries(size_t n, int64_t interval_ms,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<TsPoint> points(n);
  int64_t t = 1600000000000;
  double v = 20.0;
  for (size_t i = 0; i < n; ++i) {
    t += interval_ms;
    v += rng.Normal() * 0.05;
    points[i] = TsPoint{t, v};
  }
  return points;
}

class TsBlockRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(TsBlockRoundTrip, ExactForAnyBlockSize) {
  auto points = SensorSeries(5000, 10000, 3);
  TimeSeriesBlockCodec codec(
      TimeSeriesBlockCodec::Options{.points_per_block = GetParam()});
  Buffer out;
  ASSERT_TRUE(codec.Compress(points, &out).ok());
  auto back = TimeSeriesBlockCodec::Decompress(out.span());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), points);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TsBlockRoundTrip,
                         ::testing::Values(1, 7, 720, 4096, 100000),
                         [](const auto& param_info) {
                           return "block" + std::to_string(param_info.param);
                         });

TEST(TsBlockTest, EmptySeries) {
  TimeSeriesBlockCodec codec;
  Buffer out;
  ASSERT_TRUE(codec.Compress({}, &out).ok());
  auto back = TimeSeriesBlockCodec::Decompress(out.span());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(TsBlockTest, FixedIntervalCompressesWell) {
  // The §3.4 observation end to end: fixed-interval timestamps cost ~1
  // bit each; slow-moving values XOR small. 16 bytes/point raw.
  auto points = SensorSeries(100000, 10000, 5);
  TimeSeriesBlockCodec codec;
  Buffer out;
  ASSERT_TRUE(codec.Compress(points, &out).ok());
  double bytes_per_point = double(out.size()) / points.size();
  EXPECT_LT(bytes_per_point, 8.0) << "should beat half the raw 16 B/point";
}

TEST(TsBlockTest, RangeQueryMatchesFilteredDecode) {
  auto points = SensorSeries(10000, 10000, 7);
  TimeSeriesBlockCodec codec;
  Buffer out;
  ASSERT_TRUE(codec.Compress(points, &out).ok());

  const int64_t t0 = points[2345].ts;
  const int64_t t1 = points[4567].ts;
  auto hits = TimeSeriesBlockCodec::QueryRange(out.span(), t0, t1);
  ASSERT_TRUE(hits.ok());
  std::vector<TsPoint> expect;
  for (const auto& p : points) {
    if (p.ts >= t0 && p.ts <= t1) expect.push_back(p);
  }
  EXPECT_EQ(hits.value(), expect);
  EXPECT_EQ(hits.value().size(), 4567u - 2345u + 1u);
}

TEST(TsBlockTest, RangeQueryPrunesBlocks) {
  auto points = SensorSeries(7200, 10000, 9);  // 10 blocks of 720
  TimeSeriesBlockCodec codec;
  Buffer out;
  ASSERT_TRUE(codec.Compress(points, &out).ok());

  // A range inside a single block must decode exactly one block.
  size_t decoded = 0;
  auto hits = TimeSeriesBlockCodec::QueryRange(
      out.span(), points[100].ts, points[200].ts, &decoded);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 101u);
  EXPECT_EQ(decoded, 1u);

  // A range outside the data decodes nothing.
  decoded = 99;
  auto none = TimeSeriesBlockCodec::QueryRange(out.span(), 0, 1000, &decoded);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
  EXPECT_EQ(decoded, 0u);

  // The full range decodes all 10 blocks.
  auto all = TimeSeriesBlockCodec::QueryRange(
      out.span(), points.front().ts, points.back().ts, &decoded);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), points.size());
  EXPECT_EQ(decoded, 10u);
}

TEST(TsBlockTest, JitteredAndNonMonotoneRoundTrip) {
  Rng rng(11);
  auto jitter = SensorSeries(3000, 10000, 13);
  for (auto& p : jitter) {
    p.ts += static_cast<int64_t>(rng.UniformInt(7)) - 3;
  }
  std::vector<TsPoint> shuffled = jitter;
  std::swap(shuffled[10], shuffled[2000]);  // non-monotone

  TimeSeriesBlockCodec codec;
  for (const auto& series : {jitter, shuffled}) {
    Buffer out;
    ASSERT_TRUE(codec.Compress(series, &out).ok());
    auto back = TimeSeriesBlockCodec::Decompress(out.span());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), series);
  }
}

TEST(TsBlockTest, SpecialValuesSurvive) {
  std::vector<TsPoint> points(100);
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].ts = static_cast<int64_t>(i) * 1000;
  }
  points[3].value = std::numeric_limits<double>::quiet_NaN();
  points[7].value = std::numeric_limits<double>::infinity();
  points[11].value = -0.0;
  TimeSeriesBlockCodec codec;
  Buffer out;
  ASSERT_TRUE(codec.Compress(points, &out).ok());
  auto back = TimeSeriesBlockCodec::Decompress(out.span());
  ASSERT_TRUE(back.ok());
  // Bit-level comparison (NaN != NaN under operator==).
  ASSERT_EQ(back.value().size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(back.value()[i].ts, points[i].ts);
    uint64_t a, b;
    std::memcpy(&a, &back.value()[i].value, 8);
    std::memcpy(&b, &points[i].value, 8);
    EXPECT_EQ(a, b) << "value bits differ at " << i;
  }
}

TEST(TsBlockTest, CorruptStreamsRejected) {
  auto points = SensorSeries(2000, 10000, 17);
  TimeSeriesBlockCodec codec;
  Buffer out;
  ASSERT_TRUE(codec.Compress(points, &out).ok());
  for (size_t len = 0; len < out.size(); len += 31) {
    auto r = TimeSeriesBlockCodec::Decompress(out.span().subspan(0, len));
    (void)r;  // must not crash
  }
  for (size_t victim = 0; victim < 16 && victim < out.size(); ++victim) {
    Buffer copy = Buffer::FromSpan(out.span());
    copy.data()[victim] = 0xff;
    auto r = TimeSeriesBlockCodec::Decompress(copy.span());
    (void)r;  // header guards must bound allocations
  }
}

}  // namespace
}  // namespace fcbench::compressors
