// Golden round-trip fixture: a small deterministic corpus (seeded via
// util/rng.h) must survive compress -> decompress bit-exactly for every
// registered CPU compressor.  Complements special_values_test.cc by mixing
// NaN / Inf / denormal values into otherwise-smooth data, which is where
// prediction-based coders historically corrupt streams.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "test_names.h"
#include "util/float_bits.h"
#include "util/rng.h"

namespace fcbench {
namespace {

// Deterministic corpus: smooth sine + noise with special values injected at
// fixed positions.  Seed is fixed so the corpus is identical on every run.
template <typename T>
std::vector<T> GoldenCorpus(size_t n) {
  Rng rng(0xFCBE5C0FFEEULL);
  std::vector<T> v(n);
  for (size_t i = 0; i < n; ++i) {
    double smooth = std::sin(0.01 * static_cast<double>(i)) * 100.0;
    v[i] = static_cast<T>(smooth + rng.Normal(0.0, 0.25));
  }
  // Special values at deterministic offsets.
  if (n >= 64) {
    v[3] = std::numeric_limits<T>::quiet_NaN();
    v[17] = std::numeric_limits<T>::infinity();
    v[18] = -std::numeric_limits<T>::infinity();
    v[31] = std::numeric_limits<T>::denorm_min();
    v[32] = -std::numeric_limits<T>::denorm_min();
    v[47] = static_cast<T>(0.0);
    v[48] = static_cast<T>(-0.0);
    v[63] = std::numeric_limits<T>::max();
  }
  return v;
}

template <typename T>
void ExpectBitExact(const std::vector<T>& in, const Buffer& out,
                    const std::string& name) {
  ASSERT_EQ(out.size(), in.size() * sizeof(T)) << name;
  // memcmp, not ==, so NaN payloads and -0.0 must match exactly.
  EXPECT_EQ(std::memcmp(out.data(), in.data(), out.size()), 0)
      << name << ": decompressed bytes differ";
}

template <typename T>
void RunRoundTrip(const std::string& name, size_t n) {
  if (name == "buff") {
    // BUFF quantizes to a decimal precision; bit-exactness on arbitrary
    // bits is the documented §3.3 exception.  It gets its own golden
    // contract below (BuffDecimalContract).
    GTEST_SKIP() << "buff: documented lossy-without-precision exception";
  }
  CompressorConfig cfg;
  auto made = CompressorRegistry::Global().Create(name, cfg);
  ASSERT_TRUE(made.ok()) << name;
  auto compressor = std::move(made).value();

  DataDesc desc = DataDesc::Make(
      sizeof(T) == 4 ? DType::kFloat32 : DType::kFloat64, {n});
  if ((sizeof(T) == 4 && !compressor->traits().supports_f32) ||
      (sizeof(T) == 8 && !compressor->traits().supports_f64)) {
    GTEST_SKIP() << name << " does not support this dtype";
  }

  std::vector<T> in = GoldenCorpus<T>(n);
  Buffer compressed;
  ASSERT_TRUE(compressor->Compress(AsBytes(in), desc, &compressed).ok())
      << name;
  Buffer restored;
  ASSERT_TRUE(
      compressor->Decompress(compressed.span(), desc, &restored).ok())
      << name;
  ExpectBitExact(in, restored, name);
}

std::vector<std::string> CpuMethodNames() {
  std::vector<std::string> cpu;
  auto& reg = CompressorRegistry::Global();
  for (const auto& name : reg.Names()) {
    auto c = reg.Create(name);
    if (c.ok() && c.value()->traits().arch == Arch::kCpu) cpu.push_back(name);
  }
  return cpu;
}

class GoldenRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenRoundTripTest, Float64BitExact) {
  RunRoundTrip<double>(GetParam(), 4096);
}

TEST_P(GoldenRoundTripTest, Float32BitExact) {
  RunRoundTrip<float>(GetParam(), 4096);
}

TEST_P(GoldenRoundTripTest, SmallBufferBitExact) {
  RunRoundTrip<double>(GetParam(), 7);  // < any block size; exercises tails
}

INSTANTIATE_TEST_SUITE_P(AllCpuCompressors, GoldenRoundTripTest,
                         ::testing::ValuesIn(CpuMethodNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return SanitizeTestName(i.param);
                         });

// BUFF's lossless contract: when the data really has `precision_digits`
// decimal digits and the declared precision matches, the round trip is
// bit-exact (compressor.h: the exception only applies when the declared
// precision understates the data).
TEST(GoldenRoundTripTest, BuffDecimalContract) {
  constexpr size_t kN = 4096;
  constexpr int kDigits = 2;
  Rng rng(0xFCBE5C0FFEEULL);
  std::vector<double> in(kN);
  for (size_t i = 0; i < kN; ++i) {
    // Values in [0, 1000) rounded to exactly kDigits decimal places.
    in[i] = std::round(rng.Uniform(0.0, 1000.0) * 100.0) / 100.0;
  }

  auto made = CompressorRegistry::Global().Create("buff");
  ASSERT_TRUE(made.ok());
  auto buff = std::move(made).value();
  DataDesc desc = DataDesc::Make(DType::kFloat64, {kN}, kDigits);

  Buffer compressed;
  ASSERT_TRUE(buff->Compress(AsBytes(in), desc, &compressed).ok());
  Buffer restored;
  ASSERT_TRUE(buff->Decompress(compressed.span(), desc, &restored).ok());
  ExpectBitExact(in, restored, "buff");

  // Determinism: compressing the same corpus twice yields identical bytes.
  Buffer again;
  ASSERT_TRUE(buff->Compress(AsBytes(in), desc, &again).ok());
  ASSERT_EQ(again.size(), compressed.size());
  EXPECT_EQ(std::memcmp(again.data(), compressed.data(), again.size()), 0);
}

}  // namespace
}  // namespace fcbench
